"""The machine-level surface protocols program against (`TempestPort`),
and the per-backend cost indirection (`CostDomain`).

:class:`~repro.tempest.interface.TempestBackend` pins down what one
*node* must expose for the :class:`~repro.tempest.interface.Tempest`
facade to work.  Protocol libraries, however, are installed onto a whole
*machine* — they walk ``machine.nodes``, consult ``machine.layout`` and
``machine.heap``, and charge handler costs.  :class:`TempestPort` names
that machine-level surface, so a protocol written against it runs on any
backend that implements it (Typhoon's hardware NP, the decoupled
backend's second-CPU dispatch loop, Blizzard's all-software polling
node, or anything the registry grows later) — the paper's portability
argument, made checkable with ``isinstance``.

:class:`CostDomain` is the cost-model half of that portability.  Handler
path lengths are properties of the *protocol code* ("30 instructions for
the remote node to respond with the data"), but what a backend charges
for them is a property of the *backend*: Typhoon bills the NP, the
decoupled backend bills its handler processor, Blizzard bills the
computation thread at its own dispatch cost and CPI.  Each
machine resolves the named costs from its own config section and exposes
them as ``machine.costs``; protocol code reads only the names.  Before
this indirection existed, every protocol read ``machine.config.typhoon``
directly — so a Blizzard run silently billed Typhoon's NP instruction
counts and ignored any Blizzard-specific calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Protocol, runtime_checkable

__all__ = ["CostDomain", "TempestPort"]


@dataclass(frozen=True)
class CostDomain:
    """Named protocol costs, resolved from one backend's config section.

    Instruction-count fields are *path lengths*: the executing backend
    applies its own dispatch overhead and cycles-per-instruction on top
    (the NP's CPI on Typhoon, ``software_dispatch_cycles`` plus the CPU's
    CPI on Blizzard).  ``block_copy`` is already in cycles (a local bus
    round trip to move one 32-byte block).
    """

    #: Which config section these numbers came from ("typhoon", ...).
    domain: str
    #: Launch a miss request at a faulting node (paper: 14 instructions).
    miss_request: int
    #: Serve a request at the home directory (paper: 30 instructions).
    home_response: int
    #: Install arriving data at the requester (paper: 20 instructions).
    data_arrival: int
    #: Invalidate a cached copy and acknowledge.
    invalidate: int
    #: Absorb an invalidation acknowledgment at the home.
    ack: int
    #: Answer a writeback/recall of an exclusive copy.
    writeback: int
    #: The user-level page fault handler (allocate + map + init tags).
    page_fault: int
    #: Fixed remap cost of replacing a cached page.
    page_replace: int
    #: Marginal cost of each extra message composed inside a handler.
    per_message: int
    #: Bus round trip to copy one block to/from local DRAM (cycles).
    block_copy: int

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """Every chargeable cost name (everything but ``domain``)."""
        return tuple(f.name for f in fields(cls) if f.name != "domain")

    def get(self, name: str) -> int:
        """Resolve one named cost; raises ``KeyError`` on unknown names."""
        if name == "domain" or not hasattr(self, name):
            raise KeyError(f"unknown cost {name!r} in domain {self.domain!r}")
        return getattr(self, name)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    # ------------------------------------------------------------------
    @classmethod
    def from_typhoon(cls, costs) -> "CostDomain":
        """Resolve from a :class:`~repro.sim.config.TyphoonCosts`."""
        return cls(
            domain="typhoon",
            miss_request=costs.miss_request_instructions,
            home_response=costs.home_response_instructions,
            data_arrival=costs.data_arrival_instructions,
            invalidate=costs.invalidate_handler_instructions,
            ack=costs.ack_handler_instructions,
            writeback=costs.writeback_handler_instructions,
            page_fault=costs.page_fault_instructions,
            page_replace=costs.page_replace_instructions,
            per_message=costs.per_message_instructions,
            block_copy=costs.np_block_copy_cycles,
        )

    @classmethod
    def from_decoupled(cls, costs) -> "CostDomain":
        """Resolve from a :class:`~repro.sim.config.DecoupledCosts`."""
        return cls(
            domain="decoupled",
            miss_request=costs.miss_request_instructions,
            home_response=costs.home_response_instructions,
            data_arrival=costs.data_arrival_instructions,
            invalidate=costs.invalidate_handler_instructions,
            ack=costs.ack_handler_instructions,
            writeback=costs.writeback_handler_instructions,
            page_fault=costs.page_fault_instructions,
            page_replace=costs.page_replace_instructions,
            per_message=costs.per_message_instructions,
            block_copy=costs.block_copy_cycles,
        )

    @classmethod
    def from_blizzard(cls, costs) -> "CostDomain":
        """Resolve from a :class:`~repro.sim.config.BlizzardCosts`."""
        return cls(
            domain="blizzard",
            miss_request=costs.miss_request_instructions,
            home_response=costs.home_response_instructions,
            data_arrival=costs.data_arrival_instructions,
            invalidate=costs.invalidate_handler_instructions,
            ack=costs.ack_handler_instructions,
            writeback=costs.writeback_handler_instructions,
            page_fault=costs.page_fault_instructions,
            page_replace=costs.page_replace_instructions,
            per_message=costs.per_message_instructions,
            block_copy=costs.block_copy_cycles,
        )


@runtime_checkable
class TempestPort(Protocol):
    """What a whole machine exposes to an installed protocol library.

    Structural and ``runtime_checkable``:
    :class:`~repro.typhoon.system.TyphoonMachine`,
    :class:`~repro.decoupled.system.DecoupledMachine`, and
    :class:`~repro.blizzard.system.BlizzardMachine` all satisfy it
    without inheriting from anything here, and protocol modules annotate
    against it instead of naming a backend type (no module under
    ``repro.protocols`` may import ``repro.typhoon``,
    ``repro.decoupled``, or ``repro.blizzard`` — a test enforces this).

    Each node in ``nodes`` additionally satisfies
    :class:`~repro.tempest.interface.TempestBackend` and exposes the
    protocol wiring points: ``node.tempest`` (the per-node facade),
    ``node.np.set_fault_handler(mode, is_write, handler_name)`` (the
    block-access-fault dispatch table — a real NP on Typhoon, a
    dedicated handler processor on the decoupled backend, a software
    dispatcher on Blizzard), and ``node.set_page_fault_handler(fn)``.
    """

    config: Any
    engine: Any
    stats: Any
    layout: Any
    heap: Any
    nodes: list
    #: Backend-resolved named costs (see :class:`CostDomain`).
    costs: CostDomain
    #: The installed protocol (None until ``install_protocol``).
    protocol: Any
    #: Online conformance monitor, or None (see
    #: :mod:`repro.protocols.conformance`).
    conformance: Any

    @property
    def num_nodes(self) -> int: ...

    def install_protocol(self, protocol) -> None: ...

    def barrier_wait(self, node_id: int): ...

    def wait(self, node_id: int, future): ...
