"""Bulk node-to-node data transfer (paper Sections 2.2 and 5.2).

A transfer is initiated like a DMA: source and destination virtual
addresses plus a length.  The NP packetizes the data — a maximum-size
twenty-word packet carries a handler word, an address, 64 bytes of data,
and two words to spare — and streams the packets asynchronously with
respect to the computation thread.  The destination handler force-writes
each chunk; when every chunk has arrived it sends one completion message
back, which resolves the future the initiator received.

Because both the send and receive sides are user-level handlers, callers
can customize them (the paper points at scatter-gather); the engine here
implements the plain contiguous case protocols and applications need.
"""

from __future__ import annotations

import itertools

from repro.network.message import Message, VirtualNetwork
from repro.sim.process import Future

#: Data bytes per maximum-size packet (Section 5.2: 64 bytes of data).
CHUNK_BYTES = 64

#: NP instruction charges per packet end (calibrated: comparable to the
#: data-arrival path of Section 6, which also moves a block and updates
#: bookkeeping).
SEND_INSTRUCTIONS = 12
RECV_INSTRUCTIONS = 20

_transfer_ids = itertools.count()


class BulkTransferEngine:
    """Per-node engine driving outgoing and incoming bulk transfers."""

    DATA_HANDLER = "__bulk.data"
    DONE_HANDLER = "__bulk.done"

    def __init__(self, backend):
        self.backend = backend
        self._pending: dict[int, Future] = {}      # transfers we initiated
        self._incoming: dict[int, dict] = {}       # transfers arriving here
        # Like the protocol handlers, the bulk handlers are not
        # idempotent (a duplicated done message would double-resolve the
        # future; a duplicated chunk would over-count received): guard
        # them against lossy-transport redelivery the same way.
        from repro.tempest.messaging import DeliveryGuard

        guard = DeliveryGuard(
            getattr(backend, "stats", None),
            f"node{backend.node_id}.bulk.duplicates_dropped",
        )
        backend.registry.register(
            self.DATA_HANDLER, guard.wrap(self._on_data), RECV_INSTRUCTIONS
        )
        backend.registry.register(
            self.DONE_HANDLER, guard.wrap(self._on_done), SEND_INSTRUCTIONS
        )

    # ------------------------------------------------------------------
    # Initiator side
    # ------------------------------------------------------------------
    def start(self, dst: int, src_vaddr: int, dst_vaddr: int,
              nbytes: int) -> Future:
        """Begin a transfer; returns the completion future."""
        if nbytes <= 0:
            raise ValueError(f"transfer length must be positive, got {nbytes}")
        transfer_id = next(_transfer_ids)
        done = Future(self.backend.engine)
        self._pending[transfer_id] = done

        chunks = []
        offset = 0
        while offset < nbytes:
            length = min(CHUNK_BYTES, nbytes - offset)
            chunks.append((offset, length))
            offset += length

        # The data-transfer thread suspends itself at intervals so it does
        # not tie up the NP (Section 5.2); we model that by spacing packet
        # injections one packet per SEND_INSTRUCTIONS cycles.
        for index, (offset, length) in enumerate(chunks):
            self.backend.engine.schedule(
                index * SEND_INSTRUCTIONS,
                self._send_chunk,
                dst, src_vaddr, dst_vaddr, offset, length,
                transfer_id, len(chunks),
            )
        return done

    def _send_chunk(self, dst, src_vaddr, dst_vaddr, offset, length,
                    transfer_id, total_chunks) -> None:
        words = {}
        for byte in range(0, length, 4):
            addr = src_vaddr + offset + byte
            value = self.backend.image.read(addr, default=None)
            if value is not None:
                words[byte] = value
        self.backend.send_message(
            Message(
                src=self.backend.node_id,
                dst=dst,
                handler=self.DATA_HANDLER,
                vnet=VirtualNetwork.REQUEST,
                size_words=2 + (length + 3) // 4 + 2,
                payload={
                    "transfer_id": transfer_id,
                    "dst_vaddr": dst_vaddr,
                    "offset": offset,
                    "words": words,
                    "total_chunks": total_chunks,
                    "reply_to": self.backend.node_id,
                },
            )
        )

    # ------------------------------------------------------------------
    # Destination side
    # ------------------------------------------------------------------
    def _on_data(self, tempest, message: Message) -> None:
        payload = message.payload
        state = self._incoming.setdefault(
            payload["transfer_id"], {"received": 0}
        )
        base = payload["dst_vaddr"] + payload["offset"]
        for byte_offset, value in payload["words"].items():
            tempest.force_write(base + byte_offset, value)
        state["received"] += 1
        if state["received"] == payload["total_chunks"]:
            del self._incoming[payload["transfer_id"]]
            tempest.send(
                payload["reply_to"],
                self.DONE_HANDLER,
                vnet=VirtualNetwork.RESPONSE,
                size_words=3,
                transfer_id=payload["transfer_id"],
            )

    def _on_done(self, tempest, message: Message) -> None:
        done = self._pending.pop(message.payload["transfer_id"])
        done.resolve(None)
