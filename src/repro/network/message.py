"""Messages: the unit of network communication.

Tempest messages are *active messages* (Section 2.1): a destination node,
a handler, and data.  On Typhoon, the first payload word is the receive
handler PC; a maximum-size packet is twenty 32-bit words — handler PC +
32-bit address + 64 bytes of data "with two words to spare" (Section 5.2).

Here a message carries a handler *name* (dispatched through the receiving
node's handler registry, which is the moral equivalent of a PC) plus a
payload dictionary.  ``size_words`` is accounted explicitly so the packet
limit can be enforced and bandwidth statistics collected.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class VirtualNetwork(enum.IntEnum):
    """The two independent virtual networks (deadlock avoidance).

    A pure request/response protocol is deadlock-free if requests travel
    on one network and responses can always be processed; the NP scheduler
    gives the request network lower priority (Section 5.1).
    """

    REQUEST = 0
    RESPONSE = 1


class PacketTooLarge(ValueError):
    """Payload exceeds the maximum packet size; callers must packetize."""


_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One network packet."""

    src: int
    dst: int
    handler: str
    vnet: VirtualNetwork = VirtualNetwork.REQUEST
    payload: dict[str, Any] = field(default_factory=dict)
    size_words: int = 2  # handler word + one argument word, minimum
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    send_time: float = 0
    #: Reliable-transport transaction id; assigned on first injection when
    #: a fault plan is active (None on a perfectly reliable network).
    xid: int | None = None
    #: Delivery attempt number (1 = original send; retransmits increment).
    attempt: int = 1
    #: Set by a receiver that refused the packet (queue bound exceeded) so
    #: the interconnect knows delivery did not constitute receipt.
    nacked: bool = False
    #: Invoked at delivery (send-queue credit return); set by senders that
    #: model finite injection queues.
    on_delivered: Callable[["Message"], None] | None = field(
        default=None, repr=False, compare=False
    )

    def validated(self, max_payload_words: int) -> "Message":
        if self.size_words > max_payload_words:
            raise PacketTooLarge(
                f"{self.size_words} words exceeds the "
                f"{max_payload_words}-word packet limit"
            )
        return self

    @property
    def is_local(self) -> bool:
        """Local sends short-circuit the network (Section 5.1)."""
        return self.src == self.dst

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.handler} on {self.vnet.name})"
        )


#: Handler name of the NI-level negative acknowledgement a bounded
#: receive queue returns to the sender's reliable transport.  Intercepted
#: by the interconnect at delivery; never dispatched to an NP handler.
NACK_HANDLER = "net.nack"

#: Words occupied by a full 32-byte data block in a packet.
BLOCK_WORDS = 8

#: Conventional packet cost of a protocol request: handler + address + misc.
REQUEST_WORDS = 3

#: Conventional packet cost of a data-carrying response:
#: handler + address + 8 data words + status.
DATA_WORDS = 2 + BLOCK_WORDS + 1
