"""Deterministic fault injection for the interconnect and node front-ends.

The paper's design sections worry about finite resources — BAF-buffer
overflow, NP dispatch backpressure, full send queues (Section 4's overflow
discussion, Section 5.1's queue sizing) — but the simulator otherwise
models a perfectly reliable, in-order network.  This module supplies the
missing adversary: a seeded :class:`FaultPlan` the
:class:`~repro.network.interconnect.Interconnect` consults on every remote
injection, able to drop, duplicate, delay, or reorder packets, plus
node-level faults (periodic NP stall windows, bounded receive/BAF/send
queues with NACK on overflow).

Determinism contract
--------------------
* Every random decision comes from one named stream of
  :class:`~repro.sim.rng.RngStreams` (``machine.rng.stream("faults")``),
  so a (seed, plan) pair always produces the same fault schedule.
* A null plan (``FaultPlan.none()``, or any spec whose ``is_null`` is
  true) installs **nothing**: no events, no counters, no RNG draws.  The
  fixed-seed goldens in ``tests/integration/test_determinism_goldens.py``
  are bit-identical with or without it.
* Messages past ``fault_attempt_limit`` retransmissions are exempt from
  link faults, so every tracked message is eventually delivered — the
  "no message is permanently lost" guarantee is deterministic, not
  merely probabilistic.

See ``docs/faults.md`` for the taxonomy and a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.network.message import Message
from repro.sim.engine import SimulationError


@dataclass(frozen=True)
class FaultSpec:
    """An immutable, picklable description of a fault workload.

    All fields are plain primitives so specs can ride through
    ``multiprocessing`` as sweep-axis values.  The default instance is
    inert (``is_null`` is true).

    Link faults (applied per remote packet):

    * ``drop_pct`` — probability the packet silently dies in the network.
    * ``dup_pct`` — probability a ghost copy arrives ``dup_lag`` cycles
      after the original.
    * ``delay_pct`` / ``delay_min`` / ``delay_max`` — probability and
      bounds of an extra in-flight delay (cycles).
    * ``reorder_pct`` — probability the packet bypasses its channel's
      FIFO floor (it may overtake earlier packets on the same channel).

    ``drop_pct + dup_pct + reorder_pct`` must not exceed 1: a single
    uniform draw classifies each packet, so the three are exclusive.

    Node faults:

    * ``stall_every`` / ``stall_cycles`` — the NP dispatch loop freezes
      for the first ``stall_cycles`` of every ``stall_every``-cycle
      period (queued work waits; nothing is lost).
    * ``recv_queue_limit`` — request-network receive-queue bound; an
      arriving tracked request beyond it is NACKed back to the sender.
      Responses are never bounded (the Section 5.1 deadlock discipline:
      the response network must always sink).
    * ``baf_limit`` — BAF-buffer bound; an overflowing fault is re-presented
      after ``overflow_drain_cycles`` rather than lost.
    * ``send_queue_depth`` — overrides the NP's per-vnet send-queue depth
      (smaller = more overflow-buffer traffic).

    Recovery knobs (used by the ReliableTransport):

    * ``retry_timeout`` / ``retry_backoff`` — first retransmit fires
      ``retry_timeout`` cycles after a tracked send; attempt *n* waits
      ``retry_timeout * retry_backoff**(n-1)``.
    * ``nack_backoff`` — retransmit delay after an explicit NACK.
    * ``max_attempts`` — give up (raise ``SimulationError``) past this.
    * ``fault_attempt_limit`` — attempts beyond this are exempt from
      drop/dup/reorder, guaranteeing eventual delivery.
    """

    name: str = "none"
    drop_pct: float = 0.0
    dup_pct: float = 0.0
    delay_pct: float = 0.0
    delay_min: int = 1
    delay_max: int = 8
    reorder_pct: float = 0.0
    dup_lag: int = 3
    stall_every: int = 0
    stall_cycles: int = 0
    recv_queue_limit: int | None = None
    baf_limit: int | None = None
    send_queue_depth: int | None = None
    retry_timeout: int = 200
    retry_backoff: float = 2.0
    nack_backoff: int = 64
    max_attempts: int = 12
    fault_attempt_limit: int = 4

    def __post_init__(self) -> None:
        for field in ("drop_pct", "dup_pct", "delay_pct", "reorder_pct"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field}={value} outside [0, 1]")
        if self.drop_pct + self.dup_pct + self.reorder_pct > 1.0:
            raise ValueError(
                "drop_pct + dup_pct + reorder_pct must not exceed 1"
            )
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"bad delay bounds [{self.delay_min}, {self.delay_max}]"
            )
        if self.stall_every and not 0 < self.stall_cycles < self.stall_every:
            raise ValueError(
                "stall_cycles must satisfy 0 < stall_cycles < stall_every"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @property
    def is_null(self) -> bool:
        """True when the spec injects nothing (installing it is a no-op)."""
        return (
            self.drop_pct == 0.0
            and self.dup_pct == 0.0
            and self.delay_pct == 0.0
            and self.reorder_pct == 0.0
            and self.stall_every == 0
            and self.recv_queue_limit is None
            and self.baf_limit is None
            and self.send_queue_depth is None
        )


class FaultPlan:
    """A :class:`FaultSpec` bound to an RNG stream: the live decision maker.

    The interconnect asks :meth:`link_verdict` for every remote packet;
    the NP asks :meth:`stall_until` whenever its dispatch loop wakes.
    Bind before use: ``plan.bind(machine.rng.stream("faults"))``.
    """

    __slots__ = ("spec", "_rng")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._rng: Random | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The inert plan: injects nothing, perturbs nothing."""
        return cls(FaultSpec())

    @classmethod
    def lossy(cls, name: str = "lossy", drop_pct: float = 0.10,
              dup_pct: float = 0.05, delay_pct: float = 0.25,
              delay_min: int = 1, delay_max: int = 16) -> "FaultPlan":
        """A convenience lossy-link plan (defaults: 10% drop, 5% dup)."""
        return cls(FaultSpec(
            name=name, drop_pct=drop_pct, dup_pct=dup_pct,
            delay_pct=delay_pct, delay_min=delay_min, delay_max=delay_max,
        ))

    @staticmethod
    def of(value: "FaultPlan | FaultSpec | None") -> "FaultPlan | None":
        """Coerce a spec (or pass through a plan / None)."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, FaultSpec):
            return FaultPlan(value)
        raise TypeError(f"expected FaultPlan, FaultSpec or None, got {value!r}")

    # -- state ----------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self.spec.is_null

    def bind(self, rng: Random) -> "FaultPlan":
        """Attach the RNG stream all link verdicts will draw from."""
        self._rng = rng
        return self

    # -- decisions ------------------------------------------------------
    def link_verdict(self, message: Message) -> tuple[str | None, int]:
        """Classify one remote packet: ``(action, extra_delay)``.

        ``action`` is ``"drop"``, ``"dup"``, ``"reorder"`` or None
        (deliver normally); ``extra_delay`` is additional in-flight
        cycles (applied in every case except that a dropped packet dies
        at its would-be arrival time).  Retransmissions past
        ``fault_attempt_limit`` always get ``(None, extra_delay)``.
        """
        spec = self.spec
        rng = self._rng
        if rng is None:
            raise SimulationError("FaultPlan used before bind()")
        extra = 0
        if spec.delay_pct and rng.random() < spec.delay_pct:
            extra = rng.randint(spec.delay_min, spec.delay_max)
        if message.attempt <= spec.fault_attempt_limit:
            roll = rng.random()
            if roll < spec.drop_pct:
                return "drop", extra
            if roll < spec.drop_pct + spec.dup_pct:
                return "dup", extra
            if roll < spec.drop_pct + spec.dup_pct + spec.reorder_pct:
                return "reorder", extra
        return None, extra

    def stall_until(self, node: int, now: float) -> float | None:
        """If ``now`` falls inside an NP stall window, the cycle it ends.

        Pure arithmetic (no RNG): the first ``stall_cycles`` of every
        ``stall_every``-cycle period are frozen, identically on every
        node.  Returns None outside a window or when stalls are off.
        """
        spec = self.spec
        if not spec.stall_every:
            return None
        phase = now % spec.stall_every
        if phase < spec.stall_cycles:
            return now - phase + spec.stall_cycles
        return None

    def __repr__(self) -> str:
        bound = "bound" if self._rng is not None else "unbound"
        return f"FaultPlan({self.spec.name!r}, {bound})"


# ----------------------------------------------------------------------
# Scripted (deterministic) fault schedules
# ----------------------------------------------------------------------
_SCRIPTED_ACTIONS = (None, "drop", "dup", "reorder")


@dataclass(frozen=True)
class FaultRule:
    """One pinned link action: the ``occurrence``-th matching packet.

    A rule matches a remote packet by handler name and (optionally)
    source/destination node; the match counter is per rule, counted over
    first-attempt sends only, so retransmissions neither consume nor
    perturb the schedule.  ``action`` is one of the
    :meth:`FaultPlan.link_verdict` verdicts (or None for a pure delay);
    ``delay`` adds in-flight cycles on top.

    Rules are plain frozen dataclasses so a scripted schedule serialises
    field-by-field into a litmus-test file and reconstructs exactly
    (:mod:`repro.harness.litmus`).
    """

    handler: str
    src: int | None = None
    dst: int | None = None
    occurrence: int = 1
    action: str | None = None
    delay: int = 0

    def __post_init__(self) -> None:
        if self.action not in _SCRIPTED_ACTIONS:
            raise ValueError(
                f"action {self.action!r} not in {_SCRIPTED_ACTIONS}"
            )
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based; must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.action is None and self.delay == 0:
            raise ValueError("rule with no action and no delay is inert")

    def matches(self, message: Message) -> bool:
        return (message.handler == self.handler
                and (self.src is None or message.src == self.src)
                and (self.dst is None or message.dst == self.dst))


class ScriptedFaultPlan(FaultPlan):
    """A fault plan that replays an explicit schedule — no randomness.

    Where :class:`FaultPlan` rolls a die per packet, this plan consults
    an ordered list of :class:`FaultRule` values: each remote packet
    bumps the counter of every rule it matches, and a rule whose
    counter reaches its ``occurrence`` fires (first firing rule's
    action wins; delays accumulate).  The same machine, program, and
    schedule therefore produce the same interleaving on every run —
    which is what lets a synthesized litmus test pin an adversarial
    message ordering (a grant overtaken by a later invalidation, say)
    instead of waiting for a seed to find it.

    Retransmissions (``message.attempt > 1``) are exempt from matching
    entirely, so a dropped packet's retry is always delivered clean;
    the base spec's ``retry_timeout`` is raised far beyond any scripted
    delay so the reliable transport cannot undercut a pinned delay with
    an early retransmit copy.
    """

    __slots__ = ("rules", "_counts")

    #: Retransmit timeout for scripted runs: larger than any plausible
    #: scripted delay, so the transport never races a pinned schedule.
    RETRY_TIMEOUT = 2_000_000

    def __init__(self, rules, spec: FaultSpec | None = None):
        rules = tuple(rules)
        if spec is None:
            spec = FaultSpec(name="scripted",
                             retry_timeout=self.RETRY_TIMEOUT)
        super().__init__(spec)
        self.rules = rules
        self._counts = [0] * len(rules)

    @property
    def is_null(self) -> bool:
        """A scripted plan with rules always installs (and deopts the
        compiled kernel's fast paths), even though its base spec draws
        no random faults."""
        return not self.rules and self.spec.is_null

    def link_verdict(self, message: Message) -> tuple[str | None, int]:
        if message.attempt > 1:
            return None, 0
        action: str | None = None
        extra = 0
        for index, rule in enumerate(self.rules):
            if not rule.matches(message):
                continue
            self._counts[index] += 1
            if self._counts[index] == rule.occurrence:
                if action is None:
                    action = rule.action
                extra += rule.delay
        return action, extra


#: The fault ladder ``repro.harness.experiments.run_reliability_ladder``
#: climbs: reliable baseline, then increasingly lossy links.
RELIABILITY_LADDER: tuple[FaultSpec, ...] = (
    FaultSpec(name="none"),
    FaultSpec(name="drop1", drop_pct=0.01),
    FaultSpec(name="lossy5", drop_pct=0.05, dup_pct=0.02,
              delay_pct=0.10, delay_min=1, delay_max=8),
    FaultSpec(name="lossy10", drop_pct=0.10, dup_pct=0.05,
              delay_pct=0.25, delay_min=1, delay_max=16),
)
