"""Latency models for the interconnect.

The paper charges a flat network latency (11 cycles, Table 2) regardless
of node pair; :class:`IdealTopology` reproduces that.  :class:`Mesh2D`
charges per-hop latency on a 2-D mesh and exists for the topology ablation
bench — it answers "would the Figure 3/4 conclusions survive a less
forgiving network?".
"""

from __future__ import annotations

import math


class IdealTopology:
    """Constant latency between any two distinct nodes."""

    def __init__(self, nodes: int, latency: int):
        self.nodes = nodes
        self.base_latency = latency

    def latency(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return self.base_latency

    def __repr__(self) -> str:
        return f"IdealTopology(nodes={self.nodes}, latency={self.base_latency})"


class Mesh2D:
    """Dimension-ordered 2-D mesh: latency = base + per_hop * manhattan hops.

    The node grid is the most-square factorization of the node count
    (32 nodes -> 4 x 8).
    """

    def __init__(self, nodes: int, base_latency: int, per_hop: int):
        self.nodes = nodes
        self.base_latency = base_latency
        self.per_hop = per_hop
        self.width = self._best_width(nodes)
        self.height = -(-nodes // self.width)

    @staticmethod
    def _best_width(nodes: int) -> int:
        best = 1
        for width in range(1, int(math.isqrt(nodes)) + 1):
            if nodes % width == 0:
                best = width
        return best

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return self.base_latency + self.per_hop * self.hops(src, dst)

    def __repr__(self) -> str:
        return (
            f"Mesh2D({self.width}x{self.height}, base={self.base_latency}, "
            f"per_hop={self.per_hop})"
        )


def make_topology(name: str, nodes: int, base_latency: int, per_hop: int = 2):
    """Topology factory keyed by :class:`repro.sim.config.NetworkConfig`."""
    if name == "ideal":
        return IdealTopology(nodes, base_latency)
    if name == "mesh2d":
        return Mesh2D(nodes, base_latency, per_hop)
    raise ValueError(f"unknown topology {name!r}")
