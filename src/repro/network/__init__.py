"""Point-to-point interconnect substrate.

Models the aspects of Typhoon's CM-5-derived network that the paper says
matter (Section 5): two independent virtual networks for deadlock
avoidance, a 20-word maximum packet payload, and the flat 11-cycle latency
of Table 2.  A 2-D mesh hop model is available as an ablation.  A separate
low-latency barrier network mirrors the CM-5 control network
(``barrier_latency`` in Table 2).
"""

from repro.network.message import Message, VirtualNetwork
from repro.network.interconnect import BarrierNetwork, Interconnect
from repro.network.topology import IdealTopology, Mesh2D, make_topology

__all__ = [
    "BarrierNetwork",
    "IdealTopology",
    "Interconnect",
    "Mesh2D",
    "Message",
    "VirtualNetwork",
    "make_topology",
]
