"""The interconnect: message delivery and the hardware barrier network.

Delivery preserves point-to-point FIFO order per (source, destination,
virtual network) channel — the property protocols rely on.  Latency comes
from the topology model; the paper's simulations "do not accurately model
network ... contention" (Section 6) and neither, by default, do we, but a
simple serialization model (one packet per channel per cycle) can be
enabled to check that the conclusions are contention-robust.
"""

from __future__ import annotations

from typing import Callable

from repro.network.message import Message, NACK_HANDLER
from repro.network.topology import IdealTopology, Mesh2D
from repro.sim.config import NetworkConfig
from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Future
from repro.sim.stats import Stats


class Interconnect:
    """Routes messages between attached nodes."""

    def __init__(
        self,
        engine: Engine,
        config: NetworkConfig,
        topology: IdealTopology | Mesh2D,
        stats: Stats | None = None,
        model_contention: bool = False,
    ):
        self.engine = engine
        self.config = config
        self.topology = topology
        self.stats = stats if stats is not None else Stats()
        self.model_contention = model_contention
        self._max_payload = config.max_payload_words
        # Hot-path caches: the topology's latency function, the raw
        # counter dict (a defaultdict — plain indexing is the same as
        # Stats.incr) and the latency distribution, created on first send
        # so an idle interconnect publishes no counters.
        self._latency = topology.latency
        self._counters = self.stats._counters
        self._latency_dist = None
        self._sinks: dict[int, Callable[[Message], None]] = {}
        # channel -> earliest time the next delivery may occur (FIFO floor).
        self._channel_clear: dict[tuple[int, int, int], float] = {}
        #: Observers called with ("send"|"deliver"|"drop", message); used
        #: by the protocol trace tool.
        self.observers: list[Callable[[str, Message], None]] = []
        # Fault injection (repro.network.faults): both stay None on a
        # reliable network, keeping the hot path a single pointer test.
        self._fault_plan = None
        self._transport = None

    # ------------------------------------------------------------------
    def attach(self, node: int, sink: Callable[[Message], None]) -> None:
        """Register the delivery callback for one node (its NP or controller)."""
        if node in self._sinks:
            raise SimulationError(f"node {node} already attached")
        self._sinks[node] = sink

    def install_faults(self, plan, transport) -> None:
        """Activate a bound FaultPlan and its ReliableTransport.

        Every subsequent remote injection is classified by the plan
        (drop/dup/delay/reorder) and tracked by the transport until the
        receiver actually accepts it.
        """
        self._fault_plan = plan
        self._transport = transport

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Inject a packet; it arrives after the topology latency.

        Local messages (src == dst) short-circuit the network and arrive
        next cycle, modelling the CPU->local-NP direct path of Section 5.1.
        """
        if message.dst not in self._sinks:
            raise SimulationError(f"message to unattached node {message.dst}")
        if message.size_words > self._max_payload:
            message.validated(self._max_payload)  # raises PacketTooLarge
        engine = self.engine
        now = engine.now
        message.send_time = now

        counters = self._counters
        counters["network.packets"] += 1
        counters["network.words"] += message.size_words
        if self.observers:
            for observer in self.observers:
                observer("send", message)
        if message.src == message.dst:
            counters["network.local_packets"] += 1
            engine.schedule_anon(1, self._deliver, message)
            return

        latency = self._latency(message.src, message.dst)
        arrival = now + latency
        plan = self._fault_plan
        action = None
        if plan is not None:
            transport = self._transport
            if (transport is not None and message.xid is None
                    and message.handler != NACK_HANDLER):
                transport.track(message)
            action, extra = plan.link_verdict(message)
            if extra:
                counters["network.fault_delays"] += 1
                arrival += extra  # applied before the FIFO floor below
            if action == "reorder":
                # Bypass the channel's FIFO floor entirely (and leave the
                # floor untouched): this packet may overtake earlier ones.
                counters["network.fault_reorders"] += 1
                dist = self._latency_dist
                if dist is None:
                    dist = self._latency_dist = self.stats.distribution(
                        "network.latency")
                dist.add(arrival - now)
                engine.schedule_at_anon(arrival, self._deliver, message)
                return
        channel = (message.src, message.dst, message.vnet)
        floor = self._channel_clear.get(channel, 0)
        if arrival < floor:
            arrival = floor  # preserve FIFO order on the channel
        if self.model_contention:
            # Serialize the channel: a packet occupies it for its word count.
            self._channel_clear[channel] = arrival + message.size_words
        else:
            self._channel_clear[channel] = arrival
        if action == "drop":
            # The packet occupies the channel, then dies at its would-be
            # arrival.  Excluded from the delivered-latency distribution.
            counters["network.fault_drops"] += 1
            engine.schedule_at_anon(arrival, self._drop, message)
            return
        dist = self._latency_dist
        if dist is None:
            dist = self._latency_dist = self.stats.distribution("network.latency")
        dist.add(arrival - now)
        engine.schedule_at_anon(arrival, self._deliver, message)
        if action == "dup":
            # A ghost copy trails the original; the fire-once credit and
            # the receiver's DeliveryGuard make it harmless.
            counters["network.fault_dups"] += 1
            engine.schedule_at_anon(arrival + plan.spec.dup_lag,
                                    self._deliver, message)

    def _deliver(self, message: Message) -> None:
        for observer in self.observers:
            observer("deliver", message)
        transport = self._transport
        if transport is not None and message.handler == NACK_HANDLER:
            # NI-level negative acknowledgement: consumed here, never
            # dispatched to the node's sink.
            transport.on_nack(message)
            return
        self._sinks[message.dst](message)
        callback = message.on_delivered
        if callback is not None:
            # Fire-once: a message can reach delivery more than once
            # (duplication fault, spurious retransmit); the send-queue
            # credit must return exactly once.
            message.on_delivered = None
            callback(message)
        if transport is not None and message.xid is not None:
            if message.nacked:
                # The sink refused the packet (bounded queue) and sent a
                # NACK: delivery did not constitute receipt, so the
                # retransmit timer keeps running.
                message.nacked = False
            else:
                transport.on_receipt(message)

    def _drop(self, message: Message) -> None:
        """A fault-plan drop: the packet dies in the network.

        The sender's injection-queue credit still returns (the local NI
        accepted the packet); the reliable transport's timer, which was
        *not* stopped, will retransmit.
        """
        for observer in self.observers:
            observer("drop", message)
        callback = message.on_delivered
        if callback is not None:
            message.on_delivered = None
            callback(message)

    @property
    def attached_nodes(self) -> list[int]:
        return sorted(self._sinks)

    def __repr__(self) -> str:
        return f"Interconnect({len(self._sinks)} nodes, {self.topology!r})"


class BarrierNetwork:
    """The dedicated low-latency barrier (CM-5 control network analogue).

    ``arrive(node)`` returns a future that resolves ``barrier_latency``
    cycles after the last participant arrives.  Episodes are implicit and
    sequential: all participants of episode *k* must arrive before any
    participant may arrive for episode *k+1* — which the returned futures
    enforce naturally, since a process cannot re-arrive until released.
    """

    def __init__(self, engine: Engine, participants: int, latency: int,
                 stats: Stats | None = None):
        if participants < 1:
            raise SimulationError("barrier needs at least one participant")
        self.engine = engine
        self.participants = participants
        self.latency = latency
        self.stats = stats if stats is not None else Stats()
        self._waiting: dict[int, Future] = {}
        self.episodes = 0

    def arrive(self, node: int) -> Future:
        if node in self._waiting:
            raise SimulationError(f"node {node} arrived at the barrier twice")
        future = Future(self.engine)
        self._waiting[node] = future
        if len(self._waiting) == self.participants:
            waiters, self._waiting = self._waiting, {}
            self.episodes += 1
            self.stats.incr("barrier.episodes")
            for waiter in waiters.values():
                self.engine.schedule_anon(self.latency, waiter.resolve, None)
        return future

    def __repr__(self) -> str:
        return (
            f"BarrierNetwork(waiting={len(self._waiting)}/"
            f"{self.participants}, episodes={self.episodes})"
        )
