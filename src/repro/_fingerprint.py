"""Code-version fingerprint of the ``repro`` source tree.

The sweep result store (:mod:`repro.harness.store`) keys every cached
cell by the sweep axes *plus* this digest, so a cached row can never
outlive the code that produced it: touch any ``.py`` file under the
package and every prior entry silently becomes a miss (and is
reclaimable with ``ResultStore.gc()``).

The digest is exposed as ``repro.__source_digest__`` (PEP 562 module
attribute) and covers every ``*.py`` file under the installed package
directory — relative path and content both — so renames invalidate as
reliably as edits.  It is computed once per process and cached; pass
``refresh=True`` after modifying sources in-process (tests do).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

_cached: str | None = None


def source_digest(refresh: bool = False) -> str:
    """Hex digest (16 chars) of the ``repro`` package's source tree."""
    global _cached
    if _cached is None or refresh:
        root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py"),
                           key=lambda p: p.relative_to(root).as_posix()):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _cached = digest.hexdigest()[:16]
    return _cached
