"""Code-version fingerprint of the ``repro`` source tree.

The sweep result store (:mod:`repro.harness.store`) keys every cached
cell by the sweep axes *plus* this digest, so a cached row can never
outlive the code that produced it: touch any file under the package and
every prior entry silently becomes a miss (and is reclaimable with
``ResultStore.gc()``).

The digest is exposed as ``repro.__source_digest__`` (PEP 562 module
attribute) and covers **every regular file** under the installed package
directory — ``.py`` sources *and* declared package data (a protocol
table shipped as JSON, a calibration file, ...) — relative path and
content both, so renames invalidate as reliably as edits.  Only
interpreter by-products are excluded (``__pycache__`` directories,
``.pyc``/``.pyo`` bytecode), because they vary per interpreter without
any semantic change; the exclusion is pinned by
``tests/harness/test_store.py``.  It is computed once per process and
cached; pass ``refresh=True`` after modifying sources in-process (tests
do).
"""

from __future__ import annotations

import hashlib
from pathlib import Path

_cached: str | None = None

#: Interpreter by-products excluded from the digest: byte-identical
#: sources can produce differing bytecode across interpreters, and stale
#: caches linger after edits, so hashing them would only add noise.
_EXCLUDED_DIRS = frozenset({"__pycache__"})
_EXCLUDED_SUFFIXES = (".pyc", ".pyo")


def _fingerprinted_files(root: Path) -> list[Path]:
    """Every package file the digest covers, in canonical order."""
    return sorted(
        (
            path
            for path in root.rglob("*")
            if path.is_file()
            and not _EXCLUDED_DIRS.intersection(
                path.relative_to(root).parts[:-1])
            and path.suffix not in _EXCLUDED_SUFFIXES
        ),
        key=lambda p: p.relative_to(root).as_posix(),
    )


def source_digest(refresh: bool = False) -> str:
    """Hex digest (16 chars) of the ``repro`` package's source tree."""
    global _cached
    if _cached is None or refresh:
        root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in _fingerprinted_files(root):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _cached = digest.hexdigest()[:16]
    return _cached
