"""Command-line front end: ``python -m repro <experiment> [options]``.

Lets a user regenerate any paper artifact without writing code::

    python -m repro list
    python -m repro table2
    python -m repro figure3 --nodes 8 --apps ocean,em3d
    python -m repro figure4 --nodes 32
    python -m repro messages
    python -m repro ablations

plus the sweep service (``docs/sweeps.md``) — submit parameter sweeps
as jobs over the content-addressed result store, query them, and
manage the store::

    python -m repro sweep submit --systems dirnnb,typhoon:stache \\
        --workloads ocean:small --seeds 1,2 --nodes 2
    python -m repro sweep status <job-id>
    python -m repro sweep result <job-id> --format csv
    python -m repro sweep store stats
    python -m repro sweep store gc
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments
from repro.harness.workloads import APP_NAMES

#: experiment name -> (description, runner taking the parsed args)
_REGISTRY = {
    "table1": (
        "Table 1: the nine tagged-block operations, exercised live",
        lambda args: [experiments.run_table1()],
    ),
    "table2": (
        "Table 2: simulation parameters, configured vs. paper",
        lambda args: [experiments.run_table2()],
    ),
    "table3": (
        "Table 3: application data sets, paper vs. scaled",
        lambda args: [experiments.run_table3()],
    ),
    "figure3": (
        "Figure 3: Typhoon/Stache execution time relative to DirNNB",
        lambda args: [
            experiments.run_figure3(
                apps=args.app_list, nodes=args.nodes, seed=args.seed
            )
        ],
    ),
    "figure4": (
        "Figure 4: EM3D cycles/edge vs. % remote edges, three systems",
        lambda args: [
            experiments.run_figure4(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "breakdown": (
        "Execution-time decomposition: compute / memory / barrier",
        lambda args: [
            experiments.run_time_breakdown(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "granularity": (
        "Fine-grain (Stache) vs. page-grain (IVY) coherence",
        lambda args: [
            experiments.run_granularity(nodes=min(args.nodes, 4),
                                        seed=args.seed)
        ],
    ),
    "migratory": (
        "MP3D under Stache vs. the user-level migratory optimization",
        lambda args: [
            experiments.run_migratory_protocol(nodes=args.nodes,
                                               seed=args.seed)
        ],
    ),
    "software-tempest": (
        "The same Stache library on Typhoon vs. an all-software backend",
        lambda args: [
            experiments.run_software_tempest(nodes=args.nodes,
                                             seed=args.seed)
        ],
    ),
    "messages": (
        "Section 4's message-economy argument, measured",
        lambda args: [
            experiments.run_message_economy(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "reliability": (
        "Protocol resilience ladder under injected network faults",
        lambda args: [
            experiments.run_reliability_ladder(nodes=min(args.nodes, 4),
                                               seed=args.seed)
        ],
    ),
    "conformance": (
        "Online protocol conformance: every transition checked, per system",
        lambda args: [
            experiments.run_conformance_matrix(nodes=min(args.nodes, 4),
                                               seed=args.seed)
        ],
    ),
    "systems": (
        "List every composable backend:protocol system, grouped by "
        "backend (with each backend's provides-set)",
        lambda args: [experiments.run_backends(), experiments.run_systems()],
    ),
    "cost-points": (
        "One protocol, one access trace, three Tempest cost points",
        lambda args: [
            experiments.run_cost_points(nodes=min(args.nodes, 4),
                                        seed=args.seed)
        ],
    ),
    "matrix": (
        "Smoke-run every registered system on a tiny shared workload",
        lambda args: [
            experiments.run_system_matrix(nodes=min(args.nodes, 4),
                                          seed=args.seed)
        ],
    ),
    "bench": (
        "Dispatch-kernel throughput on the protocol hot path",
        lambda args: [
            experiments.run_bench(kernel=args.kernel, nodes=args.nodes,
                                  seed=args.seed)
        ],
    ),
    "differential": (
        "Compiled-vs-interpreted kernel differential over the matrix",
        lambda args: [
            experiments.run_differential(nodes=min(args.nodes, 4),
                                         seed=args.seed)
        ],
    ),
    "sweep-cache": (
        "Cold vs warm sweep through the content-addressed result store",
        lambda args: [
            experiments.run_sweep_cache(nodes=min(args.nodes, 4),
                                        seed=args.seed)
        ],
    ),
    "ablations": (
        "NP-speed, topology, contention, and first-touch ablations",
        lambda args: [
            experiments.run_ablation_np_speed(seed=args.seed),
            experiments.run_ablation_topology(nodes=args.nodes,
                                              seed=args.seed),
            experiments.run_ablation_contention(nodes=args.nodes,
                                                seed=args.seed),
            experiments.run_ablation_barrier(nodes=args.nodes,
                                             seed=args.seed),
            experiments.run_ablation_first_touch(nodes=args.nodes,
                                                 seed=args.seed),
        ],
    ),
}


# ----------------------------------------------------------------------
# The sweep service: python -m repro sweep <subcommand>
# ----------------------------------------------------------------------
def _parse_workloads(text: str) -> list[tuple[str, str]]:
    """``"ocean:small,em3d:small"`` -> [("ocean", "small"), ...]."""
    pairs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        app_name, _, dataset = item.partition(":")
        pairs.append((app_name, dataset or "small"))
    return pairs


def _build_sweep(args):
    from repro.harness.sweep import Sweep

    return (
        Sweep()
        .systems(*[name.strip() for name in args.systems.split(",")
                   if name.strip()])
        .workloads(*_parse_workloads(args.workloads))
        .cache_sizes(*[int(size) for size in args.cache_sizes.split(",")])
        .seeds(*[int(seed) for seed in args.seeds.split(",")])
    )


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Submit, query, and serve parameter sweeps through "
                    "the content-addressed result store "
                    "(docs/sweeps.md).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store", default=None,
                        help="store directory (default: $REPRO_STORE or "
                             ".repro-store)")
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", parents=[common],
        help="register a sweep job and (by default) run it")
    submit.add_argument("--systems", default="dirnnb,typhoon:stache",
                        help="comma-separated system names")
    submit.add_argument("--workloads", default="ocean:small",
                        help="comma-separated app:dataset pairs")
    submit.add_argument("--cache-sizes", default="2048",
                        help="comma-separated cache sizes in bytes")
    submit.add_argument("--seeds", default="42",
                        help="comma-separated RNG seeds")
    submit.add_argument("--nodes", type=int, default=8,
                        help="simulated processors per cell (default 8)")
    submit.add_argument("--workers", type=int, default=1,
                        help="process-pool width for cell execution")
    submit.add_argument("--no-run", action="store_true",
                        help="register only; execute later with "
                             "'sweep run <job-id>'")

    for name, help_text in (
            ("status", "job state and cells-in-store progress"),
            ("result", "assemble the result table from the store"),
            ("run", "execute a registered job's missing cells")):
        command = sub.add_parser(name, parents=[common], help=help_text)
        command.add_argument("job", help="job id from 'sweep submit'")
        if name == "run":
            command.add_argument("--workers", type=int, default=1)
        if name == "result":
            command.add_argument("--format",
                                 choices=("text", "csv", "json"),
                                 default="text")

    sub.add_parser("jobs", parents=[common],
                   help="list every registered job id")

    store = sub.add_parser("store", help="store maintenance")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser("stats", parents=[common],
                         help="entry counts, bytes, staleness")
    store_sub.add_parser("gc", parents=[common],
                         help="drop entries from other code versions")
    return parser


def sweep_main(argv: list[str]) -> int:
    from repro.harness.service import JobIncomplete, SweepJob
    from repro.harness.store import DEFAULT_ROOT, ResultStore

    args = build_sweep_parser().parse_args(argv)

    def progress(done, total, cached=False):
        tag = " (cached)" if cached else ""
        print(f"  cell {done}/{total}{tag}", file=sys.stderr)

    if args.command == "submit":
        job = SweepJob.submit(_build_sweep(args), nodes=args.nodes,
                              store=args.store)
        status = job.status()
        print(f"job {job.job_id}: {status['total']} cells at "
              f"{job.nodes} nodes -> {status['store']}")
        if not args.no_run:
            result = job.run(workers=args.workers, progress=progress)
            stats = result.cache_stats
            print(f"executed {stats['executed']} cells, "
                  f"{stats['hits']} hits")
        print(f"state: {job.status()['state']}")
        return 0

    if args.command == "status":
        status = SweepJob.load(args.job, store=args.store).status()
        note = "" if status["current"] else \
            f" (submitted under code version {status['digest']})"
        print(f"job {status['job']}: {status['state']} — "
              f"{status['done']}/{status['total']} cells in store"
              f"{note}")
        return 0

    if args.command == "run":
        job = SweepJob.load(args.job, store=args.store)
        result = job.run(workers=args.workers, progress=progress)
        stats = result.cache_stats
        print(f"job {job.job_id}: executed {stats['executed']} cells, "
              f"{stats['hits']} hits; state: {job.status()['state']}")
        return 0

    if args.command == "result":
        job = SweepJob.load(args.job, store=args.store)
        try:
            result = job.result()
        except JobIncomplete as error:
            print(str(error), file=sys.stderr)
            return 1
        if args.format == "csv":
            print(result.to_csv(), end="")
        elif args.format == "json":
            print(result.to_json())
        else:
            print(result.to_text())
        return 0

    if args.command == "jobs":
        for job_id in SweepJob.jobs(store=args.store):
            status = SweepJob.load(job_id, store=args.store).status()
            print(f"{job_id}  {status['state']:<8} "
                  f"{status['done']}/{status['total']} cells")
        return 0

    assert args.command == "store"
    store = (ResultStore.resolve(args.store if args.store is not None
                                 else "auto")
             or ResultStore(DEFAULT_ROOT))
    if args.store_command == "stats":
        stats = store.stats()
        print(f"store {stats['root']} (code version {stats['digest']})")
        print(f"  entries: {stats['entries']} "
              f"({stats['stale']} stale, {stats['bytes']} bytes)")
        print(f"  session: {stats['session_hits']} hits, "
              f"{stats['session_misses']} misses, "
              f"{stats['session_writes']} writes")
    else:
        swept = store.gc()
        line = (f"gc: removed {swept['removed']} stale entries, "
                f"kept {swept['kept']}")
        if swept["skipped"]:
            line += f", skipped {swept['skipped']} unremovable"
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of 'Tempest and "
                    "Typhoon: User-Level Shared Memory' (ISCA 1994).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_REGISTRY) + ["list", "all"],
        help="which artifact to regenerate ('list' to enumerate); "
             "'repro sweep ...' enters the sweep-service CLI "
             "(docs/sweeps.md); 'repro litmus' regenerates the "
             "synthesized litmus corpus (docs/protocols.md)",
    )
    parser.add_argument("--nodes", type=int, default=8,
                        help="simulated processors (paper: 32; default 8)")
    parser.add_argument("--seed", type=int, default=42,
                        help="master RNG seed (default 42)")
    parser.add_argument("--apps", type=str, default=",".join(APP_NAMES),
                        help="figure3 only: comma-separated app subset")
    parser.add_argument("--kernel", choices=("interpreted", "compiled"),
                        default="interpreted",
                        help="bench only: dispatch kernel to time "
                             "(default interpreted)")
    parser.add_argument("--format", choices=("text", "csv", "json"),
                        default="text", help="output format (default text)")
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "litmus":
        from repro.harness.litmus import main as litmus_main

        return litmus_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    args.app_list = tuple(
        name.strip() for name in args.apps.split(",") if name.strip()
    )
    unknown = [name for name in args.app_list if name not in APP_NAMES]
    if unknown:
        parser.error(f"unknown applications {unknown}; pick from {APP_NAMES}")

    if args.experiment == "list":
        width = max(len(name) for name in _REGISTRY)
        for name in sorted(_REGISTRY):
            print(f"{name:<{width}}  {_REGISTRY[name][0]}")
        return 0

    names = sorted(_REGISTRY) if args.experiment == "all" else [args.experiment]
    first = True
    for name in names:
        if not first:
            print()
        first = False
        _description, runner = _REGISTRY[name]
        for result in runner(args):
            if args.format == "csv":
                print(result.to_csv(), end="")
            elif args.format == "json":
                print(result.to_json())
            else:
                print(result.to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
