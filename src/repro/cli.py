"""Command-line front end: ``python -m repro <experiment> [options]``.

Lets a user regenerate any paper artifact without writing code::

    python -m repro list
    python -m repro table2
    python -m repro figure3 --nodes 8 --apps ocean,em3d
    python -m repro figure4 --nodes 32
    python -m repro messages
    python -m repro ablations
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments
from repro.harness.workloads import APP_NAMES

#: experiment name -> (description, runner taking the parsed args)
_REGISTRY = {
    "table1": (
        "Table 1: the nine tagged-block operations, exercised live",
        lambda args: [experiments.run_table1()],
    ),
    "table2": (
        "Table 2: simulation parameters, configured vs. paper",
        lambda args: [experiments.run_table2()],
    ),
    "table3": (
        "Table 3: application data sets, paper vs. scaled",
        lambda args: [experiments.run_table3()],
    ),
    "figure3": (
        "Figure 3: Typhoon/Stache execution time relative to DirNNB",
        lambda args: [
            experiments.run_figure3(
                apps=args.app_list, nodes=args.nodes, seed=args.seed
            )
        ],
    ),
    "figure4": (
        "Figure 4: EM3D cycles/edge vs. % remote edges, three systems",
        lambda args: [
            experiments.run_figure4(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "breakdown": (
        "Execution-time decomposition: compute / memory / barrier",
        lambda args: [
            experiments.run_time_breakdown(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "granularity": (
        "Fine-grain (Stache) vs. page-grain (IVY) coherence",
        lambda args: [
            experiments.run_granularity(nodes=min(args.nodes, 4),
                                        seed=args.seed)
        ],
    ),
    "migratory": (
        "MP3D under Stache vs. the user-level migratory optimization",
        lambda args: [
            experiments.run_migratory_protocol(nodes=args.nodes,
                                               seed=args.seed)
        ],
    ),
    "software-tempest": (
        "The same Stache library on Typhoon vs. an all-software backend",
        lambda args: [
            experiments.run_software_tempest(nodes=args.nodes,
                                             seed=args.seed)
        ],
    ),
    "messages": (
        "Section 4's message-economy argument, measured",
        lambda args: [
            experiments.run_message_economy(nodes=args.nodes, seed=args.seed)
        ],
    ),
    "reliability": (
        "Protocol resilience ladder under injected network faults",
        lambda args: [
            experiments.run_reliability_ladder(nodes=min(args.nodes, 4),
                                               seed=args.seed)
        ],
    ),
    "conformance": (
        "Online protocol conformance: every transition checked, per system",
        lambda args: [
            experiments.run_conformance_matrix(nodes=min(args.nodes, 4),
                                               seed=args.seed)
        ],
    ),
    "systems": (
        "List every composable backend:protocol system in the registry",
        lambda args: [experiments.run_systems()],
    ),
    "matrix": (
        "Smoke-run every registered system on a tiny shared workload",
        lambda args: [
            experiments.run_system_matrix(nodes=min(args.nodes, 4),
                                          seed=args.seed)
        ],
    ),
    "bench": (
        "Dispatch-kernel throughput on the protocol hot path",
        lambda args: [
            experiments.run_bench(kernel=args.kernel, nodes=args.nodes,
                                  seed=args.seed)
        ],
    ),
    "differential": (
        "Compiled-vs-interpreted kernel differential over the matrix",
        lambda args: [
            experiments.run_differential(nodes=min(args.nodes, 4),
                                         seed=args.seed)
        ],
    ),
    "ablations": (
        "NP-speed, topology, contention, and first-touch ablations",
        lambda args: [
            experiments.run_ablation_np_speed(seed=args.seed),
            experiments.run_ablation_topology(nodes=args.nodes,
                                              seed=args.seed),
            experiments.run_ablation_contention(nodes=args.nodes,
                                                seed=args.seed),
            experiments.run_ablation_barrier(nodes=args.nodes,
                                             seed=args.seed),
            experiments.run_ablation_first_touch(nodes=args.nodes,
                                                 seed=args.seed),
        ],
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of 'Tempest and "
                    "Typhoon: User-Level Shared Memory' (ISCA 1994).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_REGISTRY) + ["list", "all"],
        help="which artifact to regenerate ('list' to enumerate)",
    )
    parser.add_argument("--nodes", type=int, default=8,
                        help="simulated processors (paper: 32; default 8)")
    parser.add_argument("--seed", type=int, default=42,
                        help="master RNG seed (default 42)")
    parser.add_argument("--apps", type=str, default=",".join(APP_NAMES),
                        help="figure3 only: comma-separated app subset")
    parser.add_argument("--kernel", choices=("interpreted", "compiled"),
                        default="interpreted",
                        help="bench only: dispatch kernel to time "
                             "(default interpreted)")
    parser.add_argument("--format", choices=("text", "csv", "json"),
                        default="text", help="output format (default text)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.app_list = tuple(
        name.strip() for name in args.apps.split(",") if name.strip()
    )
    unknown = [name for name in args.app_list if name not in APP_NAMES]
    if unknown:
        parser.error(f"unknown applications {unknown}; pick from {APP_NAMES}")

    if args.experiment == "list":
        width = max(len(name) for name in _REGISTRY)
        for name in sorted(_REGISTRY):
            print(f"{name:<{width}}  {_REGISTRY[name][0]}")
        return 0

    names = sorted(_REGISTRY) if args.experiment == "all" else [args.experiment]
    first = True
    for name in names:
        if not first:
            print()
        first = False
        _description, runner = _REGISTRY[name]
        for result in runner(args):
            if args.format == "csv":
                print(result.to_csv(), end="")
            elif args.format == "json":
                print(result.to_json())
            else:
                print(result.to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
