"""Statistics collection.

Every model component shares one :class:`Stats` registry per simulation.
Counters are named hierarchically with dotted strings
(``"node3.cache.misses"``); sums, maxima and simple histograms are
supported.  The harness flattens these into the rows that reproduce the
paper's figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class Distribution:
    """Streaming min/max/mean over added samples."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"Distribution(count={self.count}, mean={self.mean:.3g})"


class Stats:
    """A hierarchical counter registry."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)
        self._distributions: dict[str, Distribution] = {}
        # Names written via set_max are high-water marks, not totals:
        # merge() must combine them with max(), never sum them.
        self._maxima: set[str] = set()

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1) -> None:
        self._counters[name] += amount

    def set_max(self, name: str, value: float) -> None:
        self._maxima.add(name)
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def sample(self, name: str, value: float) -> None:
        dist = self._distributions.get(name)
        if dist is None:
            dist = self._distributions[name] = Distribution()
        dist.add(value)

    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0) -> float:
        return self._counters.get(name, default)

    def distribution(self, name: str) -> Distribution:
        dist = self._distributions.get(name)
        if dist is None:
            dist = self._distributions[name] = Distribution()
        return dist

    def counters(self, prefix: str = "") -> dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def total(self, suffix: str) -> float:
        """Sum of every counter whose name ends with ``suffix``.

        Used to aggregate per-node counters, e.g.
        ``stats.total(".cache.misses")``.
        """
        return sum(
            value for name, value in self._counters.items() if name.endswith(suffix)
        )

    # ------------------------------------------------------------------
    def merge(self, other: "Stats") -> None:
        self._maxima |= other._maxima
        maxima = self._maxima
        for name, value in other._counters.items():
            if name in maxima:
                self.set_max(name, value)
            else:
                self._counters[name] += value
        for name, dist in other._distributions.items():
            mine = self.distribution(name)
            mine.count += dist.count
            mine.total += dist.total
            mine.minimum = min(mine.minimum, dist.minimum)
            mine.maximum = max(mine.maximum, dist.maximum)

    def as_dict(self) -> dict[str, float]:
        result = dict(self._counters)
        for name, dist in self._distributions.items():
            for key, value in dist.as_dict().items():
                result[f"{name}.{key}"] = value
        return result

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:
        return f"Stats({len(self._counters)} counters)"
