"""Machine and simulation configuration.

Defaults reproduce the paper's Table 2 ("Simulation parameters") exactly:

====================  =========================================
CPU cache             4-way assoc., random replacement
Block size            32 bytes
CPU TLB               64 entries, fully assoc., FIFO replacement
Page size             4 Kbytes
Local cache miss      29 cycles
Local writeback       0 cycles (perfect write buffer)
TLB miss              25 cycles
Network latency       11 cycles
Barrier latency       11 cycles
====================  =========================================

DirNNB-only and Typhoon-only parameters follow the corresponding Table 2
sections.  The NP handler instruction counts come from Section 6's measured
path lengths ("the NP executes only 14 instructions to request a missing
block, 30 instructions for the remote node to respond with the data, and 20
instructions when the data arrives"); counts for paths the paper does not
quote are calibrated estimates documented per field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CacheConfig:
    """A set-associative cache (the CPU's hardware cache)."""

    size_bytes: int = 256 * 1024
    associativity: int = 4
    block_size: int = 32
    replacement: str = "random"

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_blocks // self.associativity)

    def validate(self) -> None:
        if self.size_bytes % self.block_size:
            raise ValueError("cache size must be a multiple of the block size")
        if self.block_size & (self.block_size - 1):
            raise ValueError("block size must be a power of two")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        if self.replacement not in ("random", "lru", "fifo"):
            raise ValueError(f"unknown replacement policy {self.replacement!r}")


@dataclass
class TlbConfig:
    """Fully-associative TLB with FIFO replacement (Table 2)."""

    entries: int = 64
    replacement: str = "fifo"
    miss_cycles: int = 25


@dataclass
class NetworkConfig:
    """Point-to-point interconnect parameters (Table 2).

    ``topology`` selects the hop model: ``"ideal"`` charges the flat
    ``latency`` for every packet (the paper's model); ``"mesh2d"`` charges
    per-hop latency on a 2-D mesh (an ablation, Section 5's network is
    CM-5-like but the paper models only a constant).
    """

    latency: int = 11
    barrier_latency: int = 11
    topology: str = "ideal"
    mesh_per_hop: int = 2
    max_payload_words: int = 20  # Typhoon packets: twenty 32-bit words.
    # The paper's simulations "do not accurately model network ...
    # contention"; neither do we by default.  True serializes each
    # (src, dst, vnet) channel at one word per cycle (an ablation).
    model_contention: bool = False


@dataclass
class DirNNBCosts:
    """Cost model for the all-hardware DirNNB system (Table 2, DirNNB Only).

    Remote cache miss: ``23 + (5..16 if replacement) + network/directory
    cost + 34`` cycles.  Remote cache invalidate: ``8 + (5..16 if
    replacement)``.  Directory op: ``16 + 11 if block received + 5 per
    message sent + 11 if block sent``.
    """

    remote_miss_issue: int = 23
    remote_miss_finish: int = 34
    replacement_shared: int = 5
    replacement_exclusive: int = 16
    invalidate_base: int = 8
    directory_op: int = 16
    directory_block_received: int = 11
    directory_per_message: int = 5
    directory_block_sent: int = 11


@dataclass
class TyphoonCosts:
    """Cost model for the Typhoon NP (Table 2, Typhoon Only + Section 6).

    The NP executes one cycle per instruction (paper: "we approximated
    ... by charging a single cycle for each instruction").  The three
    quoted best-case handler path lengths are taken verbatim; the
    remaining handler costs are calibrated estimates scaled from those
    (each documented below), kept deliberately on the conservative
    (larger) side so Typhoon is not flattered.
    """

    cycles_per_instruction: int = 1
    np_tlb_entries: int = 64
    np_tlb_miss: int = 25
    rtlb_entries: int = 64
    rtlb_miss: int = 25
    np_dcache_bytes: int = 16 * 1024
    np_icache_bytes: int = 8 * 1024

    # Section 5.1's deadlock-avoidance plumbing: each virtual network's
    # send queue holds this many packets; further sends are transparently
    # redirected to the (unbounded) user overflow buffer, which software
    # drains as queue space frees up.  Guarantees any handler runs to
    # completion without waiting for queue space.
    send_queue_depth: int = 16
    # Cycles to drain one overflowed packet back into the send queue.
    overflow_drain_cycles: int = 4

    # Paper-quoted best-case path lengths (Section 6).
    miss_request_instructions: int = 14
    home_response_instructions: int = 30
    data_arrival_instructions: int = 20

    # Calibrated estimates for paths the paper does not quote:
    # an invalidation received at a caching node (tag flip + ack send) is
    # comparable to the miss-request path.
    invalidate_handler_instructions: int = 15
    # an invalidation-ack received at home (directory pointer clear,
    # possibly forwarding queued data) is comparable to a home response.
    ack_handler_instructions: int = 25
    # writing back a dirty block to home on replacement: pack block + send.
    writeback_handler_instructions: int = 25
    # the Stache user-level page fault handler: allocate + map + init tags.
    page_fault_instructions: int = 250
    # page replacement: per-block invalidate sweep is charged separately;
    # this is the fixed remap cost.
    page_replace_instructions: int = 150
    # marginal cost of composing and launching one additional message from
    # inside a handler (e.g. each extra invalidation a home handler sends);
    # matches DirNNB's 5-cycles-per-message directory charge.
    per_message_instructions: int = 5
    # detecting a block access fault on the bus and dispatching the handler
    # (hardware-assisted dispatch; RTLB lookup + BAF buffer fill).
    baf_dispatch_cycles: int = 5
    # bus round trip for the NP to touch local DRAM on behalf of a handler
    # (force-read/force-write of a 32-byte block over the MBus).
    np_block_copy_cycles: int = 10


@dataclass
class BlizzardCosts:
    """Cost model for the all-software Tempest backend (no NP).

    Models the "native version for the CM-5" direction of Section 2: a
    commodity message-passing node where fine-grain access control is
    synthesized in software (Blizzard-style) and protocol handlers run on
    the primary CPU at poll points.

    Defaults follow the Blizzard-E approach: read checks ride on the
    ECC/sentinel trick (free on the hit path), write checks cost a few
    instructions of inserted code, and the network is polled at every
    shared-memory reference.

    The handler path-length fields share their *names* with
    :class:`TyphoonCosts` but **not** their values.  Typhoon's quoted
    counts (14/30/20...) assume the NP's hardware assists: tags live in
    the RTLB and flip in one touch, message bodies sit in mapped
    registers, and the block-access fault arrives pre-decoded.  A
    software Tempest gets none of that — every handler manipulates an
    in-memory tag table (load, mask, store per block), marshals message
    bodies through memory, and decodes faults itself — so each path
    carries a per-field-documented software surcharge over the Typhoon
    count.  (Until ISSUE 10 these fields *did* mirror Typhoon verbatim,
    which made Blizzard a relabeled twin; the de-mirrored estimates
    below are what moved the ``blizzard`` goldens.)  The fields exist
    here so a Blizzard machine resolves its costs from its *own*
    section — retuning ``config.blizzard`` affects Blizzard runs and
    leaves Typhoon runs alone (see
    :class:`repro.tempest.port.CostDomain`).
    """

    #: Inserted-code cost per checked load (0 = the ECC/sentinel trick).
    check_read_cycles: int = 0
    #: Inserted-code cost per checked store (explicit table lookup).
    check_write_cycles: int = 3
    #: Cost of one empty network poll (inserted at each shared access).
    poll_cycles: int = 1
    #: Extra dispatch cost when a poll finds a message (no hardware assist).
    software_dispatch_cycles: int = 20
    #: The CPU cannot overlap handler work with computation: every handler
    #: instruction is charged to the computation thread at this CPI.
    cycles_per_instruction: int = 1

    # Protocol handler path lengths: Typhoon's count plus the software
    # surcharge for doing in software what the NP does in hardware.
    #: 14 + ~8 (software tag-table update + marshalling the request
    #: body through memory instead of mapped registers).
    miss_request_instructions: int = 22
    #: 30 + ~16 (directory lookup and sharer-list walk against in-memory
    #: structures, block copy staged through a bounce buffer).
    home_response_instructions: int = 46
    #: 20 + ~12 (tag flip is a table read-modify-write per block, and
    #: the arrived body is copied out of the receive buffer).
    data_arrival_instructions: int = 32
    #: 15 + ~9 (tag downgrade in the table + software ack compose).
    invalidate_handler_instructions: int = 24
    #: 25 + ~13 (pointer clear and possible forward against in-memory
    #: directory state).
    ack_handler_instructions: int = 38
    #: 25 + ~15 (pack the dirty block through memory + table downgrade).
    writeback_handler_instructions: int = 40
    #: 250 + ~70 (allocate + map as on Typhoon, then *initialize the
    #: access-control table entries* for every block of the page —
    #: Typhoon's RTLB fill does this in hardware).
    page_fault_instructions: int = 320
    #: 150 + ~50 (fixed remap cost plus tearing down the page's table
    #: entries in software).
    page_replace_instructions: int = 200
    #: 5 + ~3 (each extra message composed through memory).
    per_message_instructions: int = 8
    #: Copying a block to/from local DRAM costs the same bus round trip
    #: whether the CPU or an NP issues it.
    block_copy_cycles: int = 10


@dataclass
class DecoupledCosts:
    """Cost model for the decoupled software-handler backend.

    The middle point of the paper's design space (the direction later
    realized as Typhoon-0/Typhoon-1): a commodity dual-processor node
    where fine-grain access control is synthesized in software exactly
    as on Blizzard (inserted checks before shared stores, the
    ECC/sentinel trick for loads), but protocol handlers run on a
    *second* CPU executing a software dispatch loop that polls an inbox
    — concurrent with computation, like Typhoon's NP, yet with no
    hardware dispatch assist.

    Consequences, relative to the neighbours:

    * versus Blizzard — no inserted network poll on the compute CPU
      (the handler processor watches the network), and handler
      instructions overlap computation instead of stealing it;
    * versus Typhoon — every dispatch pays the polling loop's notice
      latency plus a software dispatch sequence instead of the NP's
      hardware-assisted ``baf_dispatch_cycles``, and the handler path
      lengths carry the same software surcharges as
      :class:`BlizzardCosts` (same software protocol library, same
      in-memory tag tables and message marshalling).

    That yields the three distinct cost points ISSUE 10 asks for:
    typhoon < decoupled < blizzard on handler-dispatch overhead.
    """

    #: Inserted-code cost per checked load (0 = the ECC/sentinel trick).
    check_read_cycles: int = 0
    #: Inserted-code cost per checked store (explicit table lookup).
    check_write_cycles: int = 3
    #: Latency for the handler processor's polling loop to notice newly
    #: queued work (re-reading the inbox head between work items).
    poll_notice_cycles: int = 2
    #: Software dispatch sequence per work item: read the descriptor,
    #: index the handler table, indirect call.  No hardware assist, but
    #: the loop is hot and resident on its own CPU, so it undercuts
    #: Blizzard's ``software_dispatch_cycles`` (which also pays to
    #: interrupt computation).
    dispatch_cycles: int = 8
    #: The handler processor executes one cycle per instruction, on its
    #: own timeline — handler work overlaps computation.
    cycles_per_instruction: int = 1

    # Protocol handler path lengths: identical to the de-mirrored
    # BlizzardCosts estimates — the handler processor runs the same
    # software protocol library against the same in-memory tag tables;
    # only *who* runs it (and at what dispatch overhead) differs.
    miss_request_instructions: int = 22
    home_response_instructions: int = 46
    data_arrival_instructions: int = 32
    invalidate_handler_instructions: int = 24
    ack_handler_instructions: int = 38
    writeback_handler_instructions: int = 40
    page_fault_instructions: int = 320
    page_replace_instructions: int = 200
    per_message_instructions: int = 8
    #: Same bus round trip for a block copy as on the other backends.
    block_copy_cycles: int = 10


@dataclass
class MachineConfig:
    """Complete description of one simulated target machine."""

    nodes: int = 32
    cache: CacheConfig = field(default_factory=CacheConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    dirnnb: DirNNBCosts = field(default_factory=DirNNBCosts)
    typhoon: TyphoonCosts = field(default_factory=TyphoonCosts)
    decoupled: DecoupledCosts = field(default_factory=DecoupledCosts)
    blizzard: BlizzardCosts = field(default_factory=BlizzardCosts)

    block_size: int = 32
    page_size: int = 4096
    local_miss_cycles: int = 29
    local_writeback_cycles: int = 0  # perfect write buffer (Table 2)
    cache_hit_cycles: int = 1

    # How many pages of local DRAM each node may devote to stached remote
    # data before FIFO page replacement kicks in.  The paper lets the
    # application choose; 4096 pages (16 MB) is effectively unbounded for
    # the scaled workloads and can be lowered to exercise replacement.
    stache_page_budget: int = 4096

    # DirNNB page placement: "round_robin" (IVY-style fixed distributed
    # manager, the paper's default) or "first_touch" (the Stenstrom et al.
    # improvement discussed in Section 6).
    page_placement: str = "round_robin"

    seed: int = 42

    def validate(self) -> None:
        self.cache.validate()
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.page_size % self.block_size:
            raise ValueError("page size must be a multiple of the block size")
        if self.cache.block_size != self.block_size:
            raise ValueError("cache block size must match machine block size")
        if self.page_placement not in ("round_robin", "first_touch"):
            raise ValueError(f"unknown page placement {self.page_placement!r}")

    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def with_cache_size(self, size_bytes: int) -> "MachineConfig":
        """A copy of this configuration with a different CPU cache size."""
        return replace(self, cache=replace(self.cache, size_bytes=size_bytes))


# Paper cache sizes swept in Figure 3, smallest to largest.
FIGURE3_CACHE_SIZES = (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024)


@dataclass(frozen=True)
class ScaleModel:
    """Maps the paper's data-set / cache pairs to CPython-feasible sizes.

    Figure 3's independent variable is really the *ratio* of an
    application's working set to the CPU cache size: the small data sets
    were chosen to be "scaled for a 4 Kbyte cache" and to fit entirely in
    the larger caches.  Scaling the data set and the cache by the same
    factor preserves that ratio, which is the paper's own methodological
    argument (Gupta et al. [13]).

    ``scale`` multiplies data-set sizes; cache sizes shrink by the same
    factor (never below ``min_cache_bytes`` so associativity structure
    survives).
    """

    scale: float = 1.0
    min_cache_bytes: int = 512
    block_size: int = 32

    def cache_bytes(self, paper_bytes: int) -> int:
        scaled = int(paper_bytes * self.scale)
        # Round down to a power of two so the set count stays a power of two.
        size = self.min_cache_bytes
        while size * 2 <= max(scaled, self.min_cache_bytes):
            size *= 2
        return size

    def count(self, paper_count: int, minimum: int = 1) -> int:
        return max(minimum, int(round(paper_count * self.scale)))
