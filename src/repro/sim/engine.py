"""The discrete-event engine: a simulated clock plus an event queue.

Time is measured in processor cycles (integers or floats; the models in
this package only ever schedule integral delays, matching the paper's
cycle-count cost model in Table 2).

Events scheduled for the same cycle fire in the order they were scheduled
(FIFO tie-break via a monotone sequence number), which makes every
simulation deterministic for a given seed.

Structural fast paths keep the common cases cheap (see
``docs/performance.md``):

* **Zero-delay fast lane.**  ``schedule(0, ...)`` — the dominant event
  class, since every ``Future.resolve`` callback and same-cycle handler
  chains through it — lands in a plain deque instead of the binary heap.
  A zero-delay event carries the current clock value, which is the
  minimum over everything queued, so the only events that may precede it
  are heap events for the *same* cycle with a *smaller* sequence number;
  the run loop performs exactly that (time, seq) merge, so firing order
  is bit-identical to a single heap.

* **Anonymous events.**  Most schedules never use the returned handle:
  the caller discards it and nothing ever cancels the event.
  :meth:`Engine.call_soon` (zero delay) and :meth:`Engine.schedule_anon`
  / :meth:`Engine.schedule_at_anon` (timed) queue a bare
  ``(seq, fn, args)`` / ``(time, seq, None, fn, args)`` tuple instead of
  allocating an :class:`_Event`, skipping the hottest allocation in the
  simulator.  Ordering is unchanged — both lanes order purely on
  ``(time, seq)``, which anonymous entries carry in the same positions.

* **Same-cycle batching.**  When the heap head lies strictly in the
  future, an unbounded run drains the entire zero-delay fifo in one
  tight loop without re-consulting the heap: events fired during the
  drain can only append to the fifo (zero delay keeps ``time == now``)
  or push heap entries at strictly later times, so the invariant holds
  for the whole run and per-event lane comparison is skipped.

* **Inline clock advance.**  :meth:`Engine.try_advance` lets a caller
  (the process layer, a node's inline-hit path) move the clock forward
  without a schedule/fire round trip when no queued event could fire in
  the skipped window — the Wind-Tunnel direct-execution trick applied to
  CPython overhead.

The heap itself stores ``(time, seq, ...)`` tuples so ordering uses
C-level tuple comparison rather than a Python ``__lt__`` per sift step;
the unique ``seq`` guarantees comparison never reaches the third slot.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for structural misuse of the engine (e.g. scheduling in the past)."""


class _Event:
    """A scheduled callback.  Cancellation is a flag check at fire time."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, engine: "Engine | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.engine = engine

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._live -= 1


class Engine:
    """Event queue and simulated clock.

    Usage::

        engine = Engine()
        engine.schedule(10, print, "fires at cycle 10")
        engine.run()
        assert engine.now == 10
    """

    def __init__(self) -> None:
        #: Timed events: a heap of (time, seq, event) triples for
        #: cancellable events and (time, seq, None, fn, args) quintuples
        #: for anonymous ones (never cancelled, no handle).
        self._queue: list[tuple] = []
        #: Zero-delay events: always carry the current clock value, in
        #: seq order (the fast lane; see module docstring).  Holds
        #: _Event objects and anonymous (seq, fn, args) tuples.
        self._fifo: deque = deque()
        self._seq = 0
        self.now: float = 0
        self._events_fired = 0
        self._running = False
        #: Live (scheduled, unfired, uncancelled) events — O(1) pending.
        self._live = 0
        #: Active ``run(until=...)`` bound; honoured by try_advance.
        self._until: float | None = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        # _Event built without the __init__ call: this is the single
        # hottest allocation site in the simulator.
        event = _Event.__new__(_Event)
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event.engine = self
        if delay == 0:
            event.time = self.now
            self._fifo.append(event)
        else:
            event.time = time = self.now + delay
            heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to fire at absolute cycle ``time``."""
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; clock is already at {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = _Event.__new__(_Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.fired = False
        event.engine = self
        if time == now:
            self._fifo.append(event)
        else:
            heapq.heappush(self._queue, (time, seq, event))
        return event

    # ------------------------------------------------------------------
    # Anonymous scheduling (no handle, never cancelled)
    # ------------------------------------------------------------------
    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Queue ``fn(*args)`` to fire this cycle, after pending events.

        The allocation-free form of ``schedule(0, ...)``: a bare
        ``(seq, fn, args)`` tuple joins the zero-delay fifo.  No handle
        is returned, so the event cannot be cancelled — exactly the
        contract of self-dispatch call sites (future callbacks, process
        kick-off) that drop the handle on the floor anyway.
        """
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        self._fifo.append((seq, fn, args))

    def schedule_anon(self, delay: float, fn: Callable[..., Any],
                      *args: Any) -> None:
        """``schedule`` without a handle: the event cannot be cancelled.

        Queues a bare tuple instead of an :class:`_Event` — for hot call
        sites (message delivery, process wakeups, barrier releases) that
        never cancel.  Firing order is identical to :meth:`schedule`.
        """
        if delay == 0:
            seq = self._seq
            self._seq = seq + 1
            self._live += 1
            self._fifo.append((seq, fn, args))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (self.now + delay, seq, None, fn, args))

    def schedule_at_anon(self, time: float, fn: Callable[..., Any],
                         *args: Any) -> None:
        """``schedule_at`` without a handle: the event cannot be cancelled."""
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; clock is already at {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        if time == now:
            self._fifo.append((seq, fn, args))
        else:
            heapq.heappush(self._queue, (time, seq, None, fn, args))

    # ------------------------------------------------------------------
    # Inline time advance (the process layer's compute fast path)
    # ------------------------------------------------------------------
    def try_advance(self, delay: float) -> bool:
        """Advance the clock ``delay`` cycles inline if provably safe.

        Safe means no queued event could fire at or before the target
        time and no active ``run(until=...)`` bound would be crossed; the
        advance is then indistinguishable from scheduling a wakeup event
        and firing it, because nothing else can run in between.  Returns
        False (taking no action) when the caller must schedule normally.
        """
        if delay < 0:
            raise SimulationError(f"cannot advance {delay} cycles into the past")
        if self._fifo:
            return False
        target = self.now + delay
        queue = self._queue
        if queue and queue[0][0] <= target:
            return False
        until = self._until
        if until is not None and target > until:
            return False
        self.now = target
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _prune_heads(self) -> None:
        """Drop cancelled husks from both lane heads (anonymous entries
        are never cancelled, so only _Event heads need checking)."""
        fifo = self._fifo
        queue = self._queue
        while fifo:
            head = fifo[0]
            if type(head) is tuple or not head.cancelled:
                break
            fifo.popleft()
        while queue:
            entry = queue[0][2]
            if entry is None or not entry.cancelled:
                break
            heapq.heappop(queue)

    def _next(self) -> tuple[float, bool] | None:
        """Peek the next live event: ``(time, from_heap)`` or None.

        A fifo event always carries the current clock value — the
        minimum over everything queued — so a heap event precedes it
        only at equal time with a smaller sequence number.
        """
        self._prune_heads()
        fifo = self._fifo
        queue = self._queue
        if fifo:
            head = fifo[0]
            seq = head[0] if type(head) is tuple else head.seq
            if queue:
                qhead = queue[0]
                if qhead[0] == self.now and qhead[1] < seq:
                    return qhead[0], True
            return self.now, False
        if queue:
            return queue[0][0], True
        return None

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        nxt = self._next()
        if nxt is None:
            return False
        time, from_heap = nxt
        self.now = time
        self._live -= 1
        self._events_fired += 1
        if from_heap:
            entry = heapq.heappop(self._queue)
            event = entry[2]
            if event is None:
                entry[3](*entry[4])
            else:
                event.fired = True
                event.fn(*event.args)
        else:
            head = self._fifo.popleft()
            if type(head) is tuple:
                head[1](*head[2])
            else:
                head.fired = True
                head.fn(*head.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or ``max_events`` fire.

        ``until`` is an absolute cycle count; the clock is left at
        ``min(until, last event time)``.  ``max_events`` is a safety valve
        for tests that want to bound runaway simulations.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._until = until
        fired = 0
        queue = self._queue
        fifo = self._fifo
        heappop = heapq.heappop
        popleft = fifo.popleft
        bounded = until is not None or max_events is not None
        try:
            while True:
                # Drop cancelled husks at both lane heads (anonymous
                # tuples are never cancelled), then pick the (time, seq)
                # minimum across the two lanes.
                while fifo:
                    head = fifo[0]
                    if type(head) is tuple or not head.cancelled:
                        break
                    popleft()
                while queue:
                    qev = queue[0][2]
                    if qev is None or not qev.cancelled:
                        break
                    heappop(queue)
                if fifo:
                    if not bounded and (not queue or queue[0][0] > self.now):
                        # Same-cycle batch: nothing in the heap can fire
                        # this cycle, and events fired below only append
                        # zero-delay work (still this cycle) or heap
                        # entries at strictly later times, so the whole
                        # fifo drains without re-checking the heap.  A
                        # husk cancelled mid-drain is skipped here too.
                        while fifo:
                            head = popleft()
                            if type(head) is tuple:
                                self._live -= 1
                                self._events_fired += 1
                                head[1](*head[2])
                            elif not head.cancelled:
                                head.fired = True
                                self._live -= 1
                                self._events_fired += 1
                                head.fn(*head.args)
                        continue
                    head = fifo[0]
                    from_heap = False
                    etime = self.now
                    if queue:
                        qhead = queue[0]
                        hseq = head[0] if type(head) is tuple else head.seq
                        if qhead[0] == etime and qhead[1] < hseq:
                            from_heap = True
                elif queue:
                    from_heap = True
                    etime = queue[0][0]
                else:
                    break
                if bounded:
                    if until is not None and etime > until:
                        self.now = until
                        return
                    if max_events is not None and fired >= max_events:
                        return
                    fired += 1
                self._live -= 1
                self._events_fired += 1
                if from_heap:
                    entry = heappop(queue)
                    self.now = etime
                    qev = entry[2]
                    if qev is None:
                        entry[3](*entry[4])
                    else:
                        qev.fired = True
                        qev.fn(*qev.args)
                else:
                    head = popleft()
                    if type(head) is tuple:
                        head[1](*head[2])
                    else:
                        head.fired = True
                        head.fn(*head.args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            self._until = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live events still queued (cancelled husks excluded).

        O(1): maintained as a counter on schedule/fire/cancel rather than
        scanned, so stray ``repr(engine)`` calls stay cheap in long runs.
        """
        return self._live

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:
        return f"Engine(now={self.now}, pending={self.pending})"
