"""The discrete-event engine: a simulated clock plus an event queue.

Time is measured in processor cycles (integers or floats; the models in
this package only ever schedule integral delays, matching the paper's
cycle-count cost model in Table 2).

Events scheduled for the same cycle fire in the order they were scheduled
(FIFO tie-break via a monotone sequence number), which makes every
simulation deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for structural misuse of the engine (e.g. scheduling in the past)."""


class _Event:
    """A scheduled callback.  Cancellation is a flag check at fire time."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True


class Engine:
    """Event queue and simulated clock.

    Usage::

        engine = Engine()
        engine.schedule(10, print, "fires at cycle 10")
        engine.run()
        assert engine.now == 10
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = 0
        self.now: float = 0
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to fire at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; clock is already at {self.now}"
            )
        event = _Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_fired += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or ``max_events`` fire.

        ``until`` is an absolute cycle count; the clock is left at
        ``min(until, last event time)``.  ``max_events`` is a safety valve
        for tests that want to bound runaway simulations.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self.now = until
                    return
                if max_events is not None and fired >= max_events:
                    return
                heapq.heappop(self._queue)
                self.now = head.time
                self._events_fired += 1
                head.fn(*head.args)
                fired += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled husks)."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:
        return f"Engine(now={self.now}, pending={self.pending})"
