"""Discrete-event simulation kernel.

This subpackage is the substrate every other layer runs on.  It plays the
role the Wisconsin Wind Tunnel played for the paper: it advances a global
simulated clock measured in **processor cycles** and coordinates the
per-node computation threads, protocol handlers, and network messages.

Unlike the Wind Tunnel we do not direct-execute SPARC binaries.  Instead,
application code runs as Python generators that *yield* costs and blocking
operations (see :mod:`repro.sim.process`), and only events that would leave
a node — misses, faults, messages, barriers — enter the event queue.  Cache
and TLB hits are serviced inline by the issuing node, which is what makes a
32-node cycle-level protocol study feasible in CPython.
"""

from repro.sim.config import (
    CacheConfig,
    DirNNBCosts,
    MachineConfig,
    NetworkConfig,
    ScaleModel,
    TlbConfig,
    TyphoonCosts,
)
from repro.sim.engine import Engine
from repro.sim.process import Future, Process, ProcessKilled
from repro.sim.rng import RngStreams
from repro.sim.stats import Stats

__all__ = [
    "CacheConfig",
    "DirNNBCosts",
    "Engine",
    "Future",
    "MachineConfig",
    "NetworkConfig",
    "Process",
    "ProcessKilled",
    "RngStreams",
    "ScaleModel",
    "Stats",
    "TlbConfig",
    "TyphoonCosts",
]
