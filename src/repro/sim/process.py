"""Generator-based simulated processes and futures.

A *process* is a Python generator driven by the engine.  The generator
yields one of:

* a non-negative number — advance this process's part of simulated time by
  that many cycles (a compute charge or a fixed hardware latency);
* a :class:`Future` — suspend until the future resolves; the resolved value
  is sent back into the generator;
* another generator — run it as a sub-routine inline (same process, shared
  suspension), its return value is sent back.

This is the mechanism by which application kernels "execute": the CPU model
in :mod:`repro.typhoon.node` wraps an application generator in a process,
services cache hits inline, and yields futures for misses so the protocol
machinery can run.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.sim.engine import Engine, SimulationError


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class Future:
    """A one-shot value that a process can block on.

    Futures are the only inter-process synchronization primitive in the
    kernel; barriers, message replies, and thread resume are all built on
    them.
    """

    __slots__ = ("engine", "_done", "_value", "_callbacks")

    def __init__(self, engine: Engine):
        self.engine = engine
        self._done = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Resolve the future; callbacks fire as zero-delay events."""
        if self._done:
            raise SimulationError("future resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.call_soon(callback, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when resolved (immediately if already done)."""
        if self._done:
            self.engine.call_soon(callback, self._value)
        else:
            self._callbacks.append(callback)

    @classmethod
    def resolved(cls, engine: Engine, value: Any = None) -> "Future":
        future = cls(engine)
        future.resolve(value)
        return future


def all_of(engine: Engine, futures: Iterable[Future]) -> Future:
    """A future that resolves (with a list of values) when all inputs have."""
    futures = list(futures)
    result = Future(engine)
    if not futures:
        result.resolve([])
        return result
    remaining = [len(futures)]
    values: list[Any] = [None] * len(futures)

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            values[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                result.resolve(values)

        return callback

    for index, future in enumerate(futures):
        future.add_callback(make_callback(index))
    return result


class Process:
    """Drives a generator through simulated time.

    The ``finished`` future resolves with the generator's return value.
    An uncaught exception in the generator propagates out of the engine's
    ``run`` call — silent failure would corrupt experiment results.
    """

    def __init__(self, engine: Engine, generator: Generator, name: str = "process"):
        self.engine = engine
        self.name = name
        self.finished = Future(engine)
        self._stack: list[Generator] = [generator]
        self._killed = False
        engine.call_soon(self._advance, None)

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Terminate the process by throwing ProcessKilled into it."""
        self._killed = True

    @property
    def alive(self) -> bool:
        return not self.finished.done

    # ------------------------------------------------------------------
    def _advance(self, send_value: Any) -> None:
        """Resume the generator stack and interpret what it yields next.

        Consecutive numeric yields are the hot path: whenever the engine
        can prove no other event would fire in the skipped window, the
        delay is applied inline (``Engine.try_advance``) and the
        generator is resumed immediately — an arbitrarily long run of
        compute charges and serviced cache hits then collapses into this
        one tight loop, entering the event queue only on a miss, fault,
        or sync operation (a Future, or a delay that overlaps pending
        work).
        """
        engine = self.engine
        # The fifo and heap objects are stable for the engine's lifetime,
        # so the inline-advance window check below can read them directly
        # instead of paying a method call per numeric yield.
        fifo = engine._fifo
        queue = engine._queue
        stack = self._stack
        finished = self.finished
        while True:
            if finished._done:
                return
            generator = stack[-1]
            try:
                if self._killed:
                    yielded = generator.throw(ProcessKilled())
                else:
                    yielded = generator.send(send_value)
            except StopIteration as stop:
                stack.pop()
                if stack:
                    send_value = stop.value
                    continue
                finished.resolve(stop.value)
                return
            except ProcessKilled:
                stack.pop()
                if stack:
                    # Propagate the kill up through nested sub-generators.
                    continue
                finished.resolve(None)
                return

            kind = type(yielded)
            if kind is int or kind is float:
                if yielded < 0:
                    raise SimulationError(
                        f"{self.name} yielded negative delay {yielded}"
                    )
                if yielded == 0:
                    send_value = None
                    continue
                # Inline Engine.try_advance: advance the clock directly
                # when no queued event could fire in the skipped window
                # and no run(until=) bound would be crossed.
                target = engine.now + yielded
                if (
                    not fifo
                    and (not queue or queue[0][0] > target)
                    and ((until := engine._until) is None or target <= until)
                ):
                    engine.now = target
                    send_value = None
                    continue
                engine.schedule_anon(yielded, self._advance, None)
                return
            if isinstance(yielded, Future):
                if yielded.done:
                    # Already-resolved future: send the value straight
                    # back in rather than taking a heap round trip.
                    send_value = yielded.value
                    continue
                yielded.add_callback(self._advance)
                return
            if hasattr(yielded, "send") and hasattr(yielded, "throw"):
                stack.append(yielded)
                send_value = None
                continue
            if isinstance(yielded, (int, float)):
                # Numeric subclass (e.g. bool) — rare enough that the
                # exact-type fast path above skipped it; same rules.
                if yielded < 0:
                    raise SimulationError(
                        f"{self.name} yielded negative delay {yielded}"
                    )
                if yielded == 0:
                    send_value = None
                    continue
                engine.schedule_anon(yielded, self._advance, None)
                return
            raise SimulationError(
                f"{self.name} yielded unsupported value {yielded!r}; "
                "expected a delay, a Future, or a sub-generator"
            )

    def __repr__(self) -> str:
        state = "done" if self.finished.done else "running"
        return f"Process({self.name}, {state})"
