"""Deterministic per-component random-number streams.

Each model component that needs randomness (cache random replacement,
workload generation, MP3D particle motion, ...) asks for a named stream.
Streams are derived from one master seed, so:

* two runs with the same master seed are bit-identical, and
* adding a new consumer of randomness does not perturb existing streams
  (each stream is seeded from a stable hash of its name, not from draw
  order).
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """Factory of named, independent ``random.Random`` instances."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={len(self._streams)})"
