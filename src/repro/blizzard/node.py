"""A Blizzard node: software access control, CPU-run handlers, polling.

The node implements the same :class:`~repro.tempest.interface.Tempest`
backend surface as a Typhoon node, so user-level protocol libraries load
unchanged.  The differences are where the paper says they are:

* **Tag checks** are inserted code: each checked load/store pays the
  configured software check cost (0 for loads under the ECC trick).
* **No NP.**  Arriving messages queue until the CPU polls — which the
  inserted instrumentation does at every shared-memory reference — or
  until the CPU is spinning for a reply anyway.  Handler instruction
  counts are charged to the *computation thread*: handler work and
  computation cannot overlap, which is precisely the cost Typhoon's
  decoupled NP avoids (Section 5.1).
* **Fault handling** is a software dispatch through the same
  (page mode, access type) table, run inline on the faulting thread.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.cache import Cache, LineState
from repro.memory.data import MemoryImage
from repro.memory.mirror import (
    PAGE_MAPPED, READ_HIT, TLB_PRESENT, WRITE_HIT, AccessMirror,
)
from repro.memory.page_table import PageTable
from repro.memory.tags import Tag, TagStore
from repro.memory.tlb import Tlb
from repro.network.message import Message, NACK_HANDLER, VirtualNetwork
from repro.sim.engine import SimulationError
from repro.sim.process import Future
from repro.tempest.interface import Tempest
from repro.tempest.messaging import HandlerRegistry
from repro.tempest.threads import ComputationThread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blizzard.system import BlizzardMachine


class SoftwareDispatcher:
    """The NP-shaped object protocols program against, minus the NP.

    Holds the (page mode, access type) -> handler table and the running
    handler's extra-charge accumulator; execution happens on the CPU in
    :meth:`BlizzardNode._service_one`.
    """

    def __init__(self, node: "BlizzardNode"):
        self.node = node
        self._fault_dispatch: dict[tuple[int, bool], str] = {}
        self.pending_charge = 0

    def set_fault_handler(self, mode: int, is_write: bool, handler: str) -> None:
        self._fault_dispatch[(mode, is_write)] = handler

    def fault_handler_for(self, mode: int, is_write: bool) -> str:
        handler = self._fault_dispatch.get((mode, is_write))
        if handler is None:
            raise SimulationError(
                f"no fault handler for mode={mode} is_write={is_write} "
                f"on node {self.node.node_id}"
            )
        return handler

    def charge(self, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError("cannot charge negative cycles")
        self.pending_charge += cycles

    def take_charge(self) -> int:
        charge, self.pending_charge = self.pending_charge, 0
        return charge


class BlizzardNode:
    """CPU + cache + TLB + software Tempest; handlers share the CPU."""

    def __init__(self, node_id: int, machine: "BlizzardMachine"):
        self.node_id = node_id
        self.machine = machine
        self.engine = machine.engine
        self.stats = machine.stats
        self.config = machine.config
        self.costs = machine.config.blizzard
        self.layout: AddressLayout = machine.layout
        self.heap = machine.heap
        self._prefix = f"node{node_id}"

        self.tags = TagStore(self.layout, node_id)
        self.page_table = PageTable(self.layout, self.tags, node_id)
        self.image = MemoryImage(self.layout, node_id)
        self.cache = Cache(
            machine.config.cache,
            machine.rng.stream(f"{self._prefix}.cache"),
            name=f"{self._prefix}.cache",
        )
        self.cpu_tlb = Tlb(machine.config.tlb, name=f"{self._prefix}.tlb")
        # Dense hit-probe mirror for the batched access lanes (see
        # repro.memory.mirror); kept coherent by the structures' own
        # mutation paths.
        self.mirror = AccessMirror(self.layout)
        self.cpu_tlb.mirror = self.mirror
        self.page_table.mirror = self.mirror
        self.cache.mirror = self.mirror
        self.thread = ComputationThread(self.engine, node_id)
        self.registry = HandlerRegistry(node_id)
        self.np = SoftwareDispatcher(self)
        self.tempest = Tempest(self)
        self.page_fault_handler = None

        self.written_blocks: set[int] = set()
        self._inbox: deque[Message] = deque()
        self._arrival: Future | None = None
        # Fault injection: inbox bound (None = unbounded, the default).
        self._recv_limit: int | None = None
        # Hot-path stat keys, precomputed so the per-reference path does
        # no string formatting.
        self._refs_key = f"{self._prefix}.cpu.refs"
        self._access_cycles_key = f"{self._prefix}.cpu.access_cycles"
        self._tlb_misses_key = f"{self._prefix}.cpu.tlb_misses"
        self._block_faults_key = f"{self._prefix}.cpu.block_faults"
        self._local_misses_key = f"{self._prefix}.cpu.local_misses"
        self._messages_sent_key = f"{self._prefix}.sw.messages_sent"
        self._handlers_run_key = f"{self._prefix}.sw.handlers_run"
        # Address arithmetic and container handles for the per-reference
        # path.  The TLB / page-table dicts are stable objects (cleared in
        # place, never reassigned), so caching them here is safe.
        self._page_shift = self.layout.page_size.bit_length() - 1
        self._page_mask = ~(self.layout.page_size - 1)
        self._block_mask = ~(self.layout.block_size - 1)
        self._block_shift = self.layout.block_size.bit_length() - 1
        self._bpp_mask = self.layout.blocks_per_page - 1
        self._hit_cycles = self.config.cache_hit_cycles
        # Per-element lane costs: a checked shared hit is poll + inserted
        # check + cache hit; private references pay the bare hit.
        costs = self.costs
        self._shared_read_cost = (
            costs.poll_cycles + costs.check_read_cycles + self._hit_cycles
        )
        self._shared_write_cost = (
            costs.poll_cycles + costs.check_write_cycles + self._hit_cycles
        )
        self._tlb_entries = self.cpu_tlb._entries
        self._pt_entries = self.page_table._entries
        self._counters = machine.stats._counters
        self._image_read = self.image.read
        self._image_write = self.image.write
        machine.interconnect.attach(node_id, self._receive)

    # ------------------------------------------------------------------
    # TempestBackend surface
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.machine.num_nodes

    def send_message(self, message: Message) -> None:
        self._counters[self._messages_sent_key] += 1
        self.machine.interconnect.send(message)

    def invalidate_cpu_copy(self, block_addr: int) -> None:
        self.cache.invalidate(block_addr)
        self.written_blocks.discard(block_addr)

    def downgrade_cpu_copy(self, block_addr: int) -> None:
        self.cache.downgrade(block_addr)
        self.written_blocks.discard(block_addr)

    def shoot_down_page(self, vaddr: int) -> None:
        self.cpu_tlb.evict(self.layout.page_number(vaddr))

    def np_charge(self, cycles: int) -> None:
        self.np.charge(cycles)

    def set_page_fault_handler(self, handler) -> None:
        self.page_fault_handler = handler

    def install_faults(self, plan) -> None:
        """Apply a bound FaultPlan's inbox bound (no NP, so no stalls)."""
        self._recv_limit = plan.spec.recv_queue_limit

    # ------------------------------------------------------------------
    # Message arrival and CPU-side servicing
    # ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        # Bounded inbox (fault injection): refuse tracked requests beyond
        # the limit — responses must always sink (deadlock discipline),
        # and untracked messages have no retransmit path.
        if (self._recv_limit is not None and message.xid is not None
                and message.vnet is not VirtualNetwork.RESPONSE
                and len(self._inbox) >= self._recv_limit):
            self._nack(message)
            return
        self._inbox.append(message)
        if self._arrival is not None:
            arrival, self._arrival = self._arrival, None
            if not arrival.done:
                arrival.resolve(None)

    def _nack(self, message: Message) -> None:
        """Bounce an NI-level NACK; the sender's transport retransmits."""
        message.nacked = True
        self.stats.incr(f"{self._prefix}.sw.nacks_sent")
        self.stats.incr("tempest.nacks_sent")
        self.machine.interconnect.send(Message(
            src=self.node_id, dst=message.src, handler=NACK_HANDLER,
            vnet=VirtualNetwork.RESPONSE, size_words=2,
            payload={"xid": message.xid},
        ))

    def _pick_next_message(self) -> Message:
        """Response-network messages first (the deadlock discipline)."""
        for index, message in enumerate(self._inbox):
            if message.vnet is VirtualNetwork.RESPONSE:
                del self._inbox[index]
                return message
        return self._inbox.popleft()

    def _service_one(self) -> Generator:
        """Run one queued handler on the CPU, charging its full cost."""
        message = self._pick_next_message()
        spec = self.registry.lookup(message.handler)
        yield (
            self.costs.software_dispatch_cycles
            + spec.instructions * self.costs.cycles_per_instruction
        )
        self._counters[self._handlers_run_key] += 1
        spec.fn(self.tempest, message)
        monitor = self.machine.conformance
        if monitor is not None:
            monitor.after_handler(self.node_id, message)
        extra = self.np.take_charge()
        if extra:
            yield extra

    def _poll(self) -> Generator:
        """The inserted poll: drain whatever has arrived."""
        yield self.costs.poll_cycles
        while self._inbox:
            yield from self._service_one()

    def poll(self) -> Generator:
        """Explicit user-level poll (also used by barrier-wait loops)."""
        yield from self._poll()

    def _spin_until(self, future: Future) -> Generator:
        """Service messages until ``future`` resolves (reply wait loop).

        Wakes on whichever happens first: a message arrives (its handler
        may be the one that resumes us) or ``future`` resolves some other
        way (e.g. a hardware-barrier release).
        """
        while not future.done:
            if self._inbox:
                yield from self._service_one()
                continue
            arrival = Future(self.engine)
            self._arrival = arrival

            def wake(_value, a=arrival):
                if not a.done:
                    a.resolve(None)

            future.add_callback(wake)
            yield arrival
            self._arrival = None

    def spin_until(self, future: Future) -> Generator:
        """Public reply-wait loop (used by the machine's barrier wait)."""
        yield from self._spin_until(future)

    # ------------------------------------------------------------------
    # CPU access path
    # ------------------------------------------------------------------
    def access_inline(self, addr: int, is_write: bool, value: Any = None):
        """Service a checked-hit access without touching the event queue.

        Blizzard's common case is a shared reference whose inserted poll
        finds an empty inbox, whose inserted tag check passes, and whose
        block hits in the hardware cache.  All of that is a fixed cycle
        charge (poll + check + hit) with no protocol activity, so when
        the engine can prove no event would fire inside that window the
        whole access commits inline.  Returns ``(result,)`` on success,
        or None (side-effect free) when :meth:`access` must run.

        The engine window is checked *first* (see
        ``TyphoonNode.access_inline``): rejection in lock-step phases must
        cost attribute reads, not probes the fallback then repeats.
        """
        engine = self.engine
        if engine._fifo or self._inbox:
            return None
        shared = addr >= SHARED_BASE
        if shared:
            costs = self.costs
            cycles = costs.poll_cycles + self._hit_cycles + (
                costs.check_write_cycles if is_write else costs.check_read_cycles
            )
        else:
            cycles = self._hit_cycles
        target = engine.now + cycles
        queue = engine._queue
        if queue and queue[0][0] <= target:
            return None
        until = engine._until
        if until is not None and target > until:
            return None
        if (addr >> self._page_shift) not in self._tlb_entries:
            return None
        if shared and (addr & self._page_mask) not in self._pt_entries:
            return None
        block = addr & self._block_mask
        line = self.cache.lookup(block)
        if line is None or (is_write and line.state is LineState.SHARED):
            return None
        # Commit: identical effects to the generator path's hit branch.
        # The probes above cannot schedule events, so the window check
        # still holds and the clock can move directly.
        engine.now = target
        self.cpu_tlb.hits += 1
        self.cache.hits += 1
        counters = self._counters
        counters[self._refs_key] += 1
        if is_write:
            self._image_write(addr, value)
            if shared:
                self.written_blocks.add(block)
            result = None
        else:
            result = value = self._image_read(addr)
        counters[self._access_cycles_key] += cycles
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value,
                engine.now - cycles, engine.now,
            )
        return (result,)

    # ------------------------------------------------------------------
    # Batched access lanes (vectorised reference engine)
    # ------------------------------------------------------------------
    def run_read_prefix(self, addrs, start: int, out: list) -> int:
        """Commit the longest all-hit prefix of ``addrs[start:]`` in bulk.

        Blizzard's variant of ``TyphoonNode.run_read_prefix``: each
        shared element charges poll + inserted-check + hit (the inbox is
        provably empty for the whole batch — no event can fire inside
        the committed window, so no message can arrive), private
        elements the bare hit.  Deopts under a fault plan, conformance,
        a pending FIFO, or a non-empty inbox.
        """
        engine = self.engine
        machine = self.machine
        if (engine._fifo or self._inbox or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        shared_cost = self._shared_read_cost
        private_cost = self._hit_cycles
        queue = engine._queue
        now = engine.now
        # Early reject on the cheapest possible first element (a private
        # hit): if even that window is dirty, no element can commit.
        if queue:
            limit = queue[0][0]
            # Room for at least two cheapest-cost elements: a
            # one-element batch costs more in lane setup than the
            # scalar inline commit it replaces.
            if limit <= now + 2 * private_cost:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + private_cost > until:
            return start
        mirror = self.mirror
        # Cheap first-element probe: in miss phases the common reject is
        # an open window with a cold first element, and that reject must
        # not pay the full scan setup below.
        addr = addrs[start]
        page = addr >> self._page_shift
        need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                else TLB_PRESENT)
        if mirror.page_flags.get(page, 0) & need != need:
            return start
        probe = mirror.block_flags.get(page)
        if probe is None or not (
                probe[(addr >> self._block_shift) & self._bpp_mask]
                & READ_HIT):
            return start
        page_flags = mirror.page_flags
        block_flags = mirror.block_flags
        page_shift = self._page_shift
        block_shift = self._block_shift
        bpp_mask = self._bpp_mask
        image_read = self._image_read
        out_append = out.append
        out_base = len(out)

        target = now
        index = start
        total = len(addrs)
        current_page = -1
        page_cost = private_cost
        blocks = None
        while index < total:
            addr = addrs[index]
            page = addr >> page_shift
            if page != current_page:
                shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
                page_cost = shared_cost if shared else private_cost
            step = target + page_cost
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            if not blocks[(addr >> block_shift) & bpp_mask] & READ_HIT:
                break
            out_append(image_read(addr))
            target = step
            index += 1

        n = index - start
        if n:
            engine.now = target
            self.cpu_tlb.hits += n
            self.cache.hits += n
            counters = self._counters
            counters[self._refs_key] += n
            counters[self._access_cycles_key] += target - now
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr = addrs[start + i]
                    cost = (shared_cost if addr >= SHARED_BASE
                            else private_cost)
                    history.record(self.node_id, addr, False,
                                   out[out_base + i], t, t + cost)
                    t += cost
        return index

    def run_plan_prefix(self, ops, start: int, out: list) -> int:
        """Mixed read/write batched lane; see ``TyphoonNode.run_plan_prefix``.

        ``ops`` is ``(addr, is_write, value)`` tuples; writes need the
        block resident EXCLUSIVE (mirror WRITE_HIT) and charge the
        inserted write-check cost on shared pages.
        """
        engine = self.engine
        machine = self.machine
        if (engine._fifo or self._inbox or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        shared_read = self._shared_read_cost
        shared_write = self._shared_write_cost
        private_cost = self._hit_cycles
        queue = engine._queue
        now = engine.now
        if queue:
            limit = queue[0][0]
            # Room for at least two cheapest-cost elements: a
            # one-element batch costs more in lane setup than the
            # scalar inline commit it replaces.
            if limit <= now + 2 * private_cost:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + private_cost > until:
            return start
        mirror = self.mirror
        # Cheap first-element probe (see run_read_prefix).
        addr, is_write, value = ops[start]
        page = addr >> self._page_shift
        need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                else TLB_PRESENT)
        if mirror.page_flags.get(page, 0) & need != need:
            return start
        probe = mirror.block_flags.get(page)
        if probe is None or not (
                probe[(addr >> self._block_shift) & self._bpp_mask]
                & (WRITE_HIT if is_write else READ_HIT)):
            return start
        page_flags = mirror.page_flags
        block_flags = mirror.block_flags
        page_shift = self._page_shift
        block_shift = self._block_shift
        bpp_mask = self._bpp_mask
        block_mask = self._block_mask
        image_read = self._image_read
        image_write = self._image_write
        written_add = self.written_blocks.add
        out_append = out.append
        out_base = len(out)

        target = now
        index = start
        total = len(ops)
        current_page = -1
        page_shared = False
        blocks = None
        while index < total:
            addr, is_write, value = ops[index]
            page = addr >> page_shift
            if page != current_page:
                page_shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if page_shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if page_shared:
                cost = shared_write if is_write else shared_read
            else:
                cost = private_cost
            step = target + cost
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            if not (blocks[(addr >> block_shift) & bpp_mask]
                    & (WRITE_HIT if is_write else READ_HIT)):
                break
            if is_write:
                image_write(addr, value)
                if page_shared:
                    written_add(addr & block_mask)
                out_append(None)
            else:
                out_append(image_read(addr))
            target = step
            index += 1

        n = index - start
        if n:
            engine.now = target
            self.cpu_tlb.hits += n
            self.cache.hits += n
            counters = self._counters
            counters[self._refs_key] += n
            counters[self._access_cycles_key] += target - now
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr, is_write, value = ops[start + i]
                    if not is_write:
                        value = out[out_base + i]
                    if addr >= SHARED_BASE:
                        cost = shared_write if is_write else shared_read
                    else:
                        cost = private_cost
                    history.record(self.node_id, addr, is_write, value,
                                   t, t + cost)
                    t += cost
        return index

    def access(self, addr: int, is_write: bool, value: Any = None) -> Generator:
        counters = self._counters
        counters[self._refs_key] += 1
        start = self.engine.now
        shared = addr >= SHARED_BASE
        if shared:
            yield from self._poll()
        if not self.cpu_tlb.access(addr >> self._page_shift):
            counters[self._tlb_misses_key] += 1
            yield self.config.tlb.miss_cycles

        block = addr & self._block_mask
        while True:
            if shared and (addr & self._page_mask) not in self._pt_entries:
                yield from self._handle_page_fault(addr, is_write)
                continue
            if shared:
                # Inserted check code (Blizzard-S/E): loads may ride the
                # ECC trick; stores pay the lookup.
                check = (self.costs.check_write_cycles if is_write
                         else self.costs.check_read_cycles)
                if check:
                    yield check
            if self.cache.access(block, is_write):
                yield self._hit_cycles
                return self._complete(addr, is_write, value, start)
            if shared:
                fault = self.tags.check(addr, is_write)
                if fault is not None:
                    counters[self._block_faults_key] += 1
                    yield from self._handle_block_fault(fault)
                    continue
            yield self.config.local_miss_cycles
            counters[self._local_misses_key] += 1
            if shared and self.tags.read_tag(addr) is Tag.READ_ONLY:
                state = LineState.SHARED
            else:
                state = LineState.EXCLUSIVE
            self.cache.insert(block, state)
            return self._complete(addr, is_write, value, start)

    def _handle_block_fault(self, fault) -> Generator:
        """Software fault dispatch: handler runs inline, then spin-wait."""
        entry = self.page_table.lookup(fault.addr)
        handler_name = self.np.fault_handler_for(entry.mode, fault.is_write)
        spec = self.registry.lookup(handler_name)
        suspension = self.thread.suspend()
        yield (
            self.costs.software_dispatch_cycles
            + spec.instructions * self.costs.cycles_per_instruction
        )
        spec.fn(self.tempest, fault)
        monitor = self.machine.conformance
        if monitor is not None:
            monitor.after_handler(self.node_id, fault)
        extra = self.np.take_charge()
        if extra:
            yield extra
        if not suspension.done:
            yield from self._spin_until(suspension)

    def _handle_page_fault(self, addr: int, is_write: bool) -> Generator:
        self.stats.incr(f"{self._prefix}.cpu.page_faults")
        if self.page_fault_handler is None:
            raise SimulationError(
                f"page fault at {addr:#x} on node {self.node_id} "
                "with no user-level handler installed"
            )
        # The user-level page fault handler runs on the primary CPU,
        # charged at this backend's own resolved cost (Blizzard runs
        # used to bill Typhoon's NP instruction count here).
        yield self.machine.costs.page_fault
        extra = self.page_fault_handler(self.tempest, addr, is_write)
        if extra:
            yield extra

    def _complete(self, addr: int, is_write: bool, value: Any,
                  start: float) -> Any:
        if is_write:
            self._image_write(addr, value)
            if addr >= SHARED_BASE:
                self.written_blocks.add(addr & self._block_mask)
            result = None
        else:
            result = value = self._image_read(addr)
        self._counters[self._access_cycles_key] += self.engine.now - start
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value, start, self.engine.now
            )
        return result

    def __repr__(self) -> str:
        return f"BlizzardNode({self.node_id})"
