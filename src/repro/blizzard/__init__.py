"""An all-software Tempest backend (no custom hardware).

Section 2 of the paper: "Tempest can also be implemented in software for
existing machines.  We are currently investigating a 'native' version for
the CM-5" — the direction that became the Blizzard systems.  This package
models such a machine: commodity message-passing nodes where

* fine-grain access control is synthesized in software (inserted check
  code / the ECC-sentinel trick; :class:`repro.sim.config.BlizzardCosts`),
* there is **no NP** — protocol handlers run on the primary CPU, which
  polls the network at every shared-memory reference, and
* everything else (tags, page tables, the Tempest facade) is the same
  machinery Typhoon uses.

The payoff is twofold.  First, portability made executable: the *same*
:class:`~repro.protocols.stache.StacheProtocol` object installs on a
:class:`BlizzardMachine` unchanged — exactly the Tempest abstraction
claim.  Second, the Typhoon hardware's value can be measured: the
software-vs-hardware Tempest bench quantifies what the NP buys.
"""

from repro.blizzard.node import BlizzardNode, SoftwareDispatcher
from repro.blizzard.system import BlizzardMachine

__all__ = ["BlizzardMachine", "BlizzardNode", "SoftwareDispatcher"]
