"""Whole-machine assembly for the software Tempest backend."""

from __future__ import annotations

from typing import Callable, Generator

from repro.blizzard.node import BlizzardNode
from repro.machine import MachineBase
from repro.sim.config import MachineConfig
from repro.tempest.port import CostDomain


class BlizzardMachine(MachineBase):
    """N commodity nodes running Tempest entirely in software."""

    system_name = "blizzard"

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        self.costs = CostDomain.from_blizzard(config.blizzard)
        self.nodes: list[BlizzardNode] = [
            BlizzardNode(node_id, self) for node_id in range(config.nodes)
        ]
        self.protocol = None

    @property
    def tempests(self) -> list:
        return [node.tempest for node in self.nodes]

    def install_protocol(self, protocol) -> None:
        if self.protocol is not None:
            raise RuntimeError("a protocol is already installed")
        self.protocol = protocol
        protocol.install(self)
        self._maybe_auto_conformance()

    # ------------------------------------------------------------------
    def barrier_wait(self, node_id: int) -> Generator:
        """Barrier arrival that keeps servicing protocol messages.

        With no NP, a node stalled at a barrier is the only thing that
        can run handlers for requests targeting it — so the wait loop
        polls (which is also how real polling-based systems avoid
        deadlock at synchronization points).
        """
        node = self.nodes[node_id]
        yield from node.spin_until(self.barrier.arrive(node_id))

    def wait(self, node_id: int, future) -> Generator:
        """Completion wait that keeps the software dispatcher running."""
        yield from self.nodes[node_id].spin_until(future)

    def run_workers(self, worker_factory: Callable[[int], Generator]):
        """Run workers inside a dispatcher loop, then drain leftovers.

        A node whose application code has finished must keep servicing
        protocol requests (it may be the home of data other nodes still
        use) — the runtime's dispatcher loop in a real polling system.
        Each worker is therefore wrapped: after its application part
        completes, the node spins servicing messages until every node's
        application part is done.

        Messages still in flight at that point are drained afterwards
        (uncharged; the clock has stopped) so post-run state inspection
        sees a quiescent machine.
        """
        from repro.sim.process import Future

        done_count = [0]
        all_done = Future(self.engine)

        def wrapped(node_id: int) -> Generator:
            result = yield from worker_factory(node_id)
            done_count[0] += 1
            if done_count[0] == self.num_nodes:
                all_done.resolve(None)
            yield from self.nodes[node_id].spin_until(all_done)
            return result

        finish_times = super().run_workers(wrapped)
        for _sweep in range(self.num_nodes + 1):
            progressed = False
            for node in self.nodes:
                while node._inbox:
                    message = node._pick_next_message()
                    spec = node.registry.lookup(message.handler)
                    spec.fn(node.tempest, message)
                    if self.conformance is not None:
                        self.conformance.after_handler(node.node_id, message)
                    node.np.take_charge()
                    progressed = True
            self.engine.run()
            if not progressed:
                break
        return finish_times

    def __repr__(self) -> str:
        protocol = type(self.protocol).__name__ if self.protocol else "none"
        return (
            f"BlizzardMachine(nodes={self.num_nodes}, protocol={protocol})"
        )
