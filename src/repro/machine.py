"""Common machine assembly shared by the Typhoon and DirNNB targets.

A *machine* owns the simulation engine, the statistics registry, the
shared-segment heap, the interconnect, and the barrier network, and builds
one node per processor.  The two target systems of Section 6 —
Typhoon running user-level protocols, and the all-hardware DirNNB
system — are both machines; applications run unchanged on either
(the paper: "Unaltered shared-memory programs are simply re-linked with
the Stache runtime library").
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.memory.address import AddressLayout
from repro.memory.allocator import GlobalHeap
from repro.network.interconnect import BarrierNetwork, Interconnect
from repro.network.topology import make_topology
from repro.sim.config import MachineConfig
from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.stats import Stats


class MachineBase:
    """Engine + interconnect + heap + nodes; subclasses add the node type."""

    #: Human-readable protocol/system name (subclasses override).
    system_name = "base"

    def __init__(self, config: MachineConfig):
        config.validate()
        self.config = config
        self.engine = Engine()
        self.stats = Stats()
        self.rng = RngStreams(config.seed)
        self.layout = AddressLayout(config.block_size, config.page_size)
        self.heap = GlobalHeap(self.layout, config.nodes)
        topology = make_topology(
            config.network.topology,
            config.nodes,
            config.network.latency,
            config.network.mesh_per_hop,
        )
        self.interconnect = Interconnect(
            self.engine, config.network, topology, self.stats,
            model_contention=config.network.model_contention,
        )
        self.barrier = BarrierNetwork(
            self.engine, config.nodes, config.network.barrier_latency, self.stats
        )
        self.nodes: list = []
        self.execution_time: float = 0
        self._finish_times: dict[int, float] = {}
        #: Optional access recorder (see repro.protocols.history); when
        #: set, every CPU access is recorded for consistency checking.
        self.history = None
        #: Observers called with each AccessFault the hardware captures
        #: (see repro.harness.trace).
        self.fault_observers: list = []
        #: Active fault-injection plan and its reliable transport (see
        #: repro.network.faults); both None on a reliable machine.
        self.fault_plan = None
        self.transport = None
        #: Online conformance monitor (see repro.protocols.conformance);
        #: None unless :meth:`enable_conformance` was called.
        self.conformance = None
        #: Batched access lanes (see repro.memory.mirror and the node
        #: models' run_*_prefix methods): on by default; False makes
        #: every AppContext run decompose to scalar accesses — the
        #: differential oracle for the vectorised reference engine.
        self.batch_lanes = True
        #: Backend-resolved named protocol costs (see
        #: :class:`repro.tempest.port.CostDomain`); set by machines that
        #: host user-level protocols (None on all-hardware DirNNB).
        self.costs = None
        #: Dispatch kernel (see :mod:`repro.kernel`): None means the
        #: interpreted hand-written dispatch loops; a
        #: :class:`~repro.kernel.compiled.CompiledKernel` means the
        #: table-driven fast paths are installed.  Set via
        #: :func:`repro.kernel.install_kernel`.
        self.kernel = None
        self.kernel_name = "interpreted"
        #: Why a requested ``kernel="compiled"`` fell back (None when the
        #: request was honoured or never made).
        self.kernel_fallback_reason = None

    # ------------------------------------------------------------------
    def install_fault_plan(self, faults):
        """Activate fault injection (a FaultPlan, FaultSpec, or None).

        Call after the protocol is installed (nodes must exist).  A null
        plan installs nothing at all — zero events, zero counters, zero
        RNG draws — so fixed-seed runs stay bit-identical.  A live plan
        binds the ``"faults"`` RNG stream, wires a
        :class:`~repro.tempest.messaging.ReliableTransport` into the
        interconnect, and applies node-level bounds/stalls on every node
        that supports them.  Returns the bound plan (None if inert).
        """
        from repro.network.faults import FaultPlan
        from repro.tempest.messaging import ReliableTransport

        plan = FaultPlan.of(faults)
        if plan is None or plan.is_null:
            return None
        plan.bind(self.rng.stream("faults"))
        transport = ReliableTransport(
            self.engine, self.interconnect, plan.spec, self.stats
        )
        self.fault_plan = plan
        self.transport = transport
        self.interconnect.install_faults(plan, transport)
        if self.conformance is not None:
            transport.flight_recorder = self.conformance.recorder
        for node in self.nodes:
            install = getattr(node, "install_faults", None)
            if install is not None:
                install(plan)
        if self.kernel is not None:
            # Fault semantics (stalls, NACKs, drops) live in the
            # interpreted loops: the compiled kernel deopts the paths
            # that would bypass them.
            self.kernel.refresh()
        return plan

    # ------------------------------------------------------------------
    def enable_conformance(self, strict: bool = True, history: int = 64):
        """Turn on online protocol conformance checking.

        Builds a :class:`~repro.protocols.conformance.ConformanceMonitor`
        for the installed protocol's specification and attaches it to
        this machine's emission points.  Off by default: a machine that
        never calls this runs with zero monitoring overhead and
        bit-identical goldens.  Idempotent; returns the monitor.

        ``strict=True`` raises
        :class:`~repro.protocols.verify.CoherenceViolation` (with the
        flight recorder's event history) at the first violation;
        ``strict=False`` only accumulates ``monitor.violations``.
        """
        if self.conformance is not None:
            # Already monitoring (possibly auto-enabled via
            # REPRO_CONFORMANCE): honor the newly requested strictness.
            self.conformance.strict = strict
            return self.conformance
        from repro.protocols.conformance import ConformanceMonitor, spec_for

        spec = spec_for(self)
        if spec is None:
            from repro.backends import spec_name_for

            raise SimulationError(
                f"no conformance spec for protocol "
                f"{spec_name_for(self)!r} on {self.system_name!r}: add a "
                f"transition table to repro.protocols.conformance.SPECS "
                f"(every registered protocol has one)"
            )
        monitor = ConformanceMonitor(
            self, spec, strict=strict, history=history
        ).attach()
        self.conformance = monitor
        if self.transport is not None:
            self.transport.flight_recorder = monitor.recorder
        if self.kernel is not None:
            # Re-specialise the compiled dispatch closures so the
            # monitor's after_handler hook is fused into them.
            self.kernel.refresh()
        return monitor

    def _maybe_auto_conformance(self) -> None:
        """Honor ``REPRO_CONFORMANCE=1``: enable the monitor on every
        machine whose protocol has a spec (CI's conformance job)."""
        import os

        if self.conformance is not None:
            return
        if os.environ.get("REPRO_CONFORMANCE", "") not in ("", "0"):
            from repro.protocols.conformance import spec_for

            if spec_for(self) is not None:
                self.enable_conformance()

    @property
    def num_nodes(self) -> int:
        return self.config.nodes

    def node(self, node_id: int):
        return self.nodes[node_id]

    def barrier_wait(self, node_id: int):
        """Generator: arrive at the machine barrier and wait for release.

        Machines without a hardware barrier (or whose nodes must keep
        servicing protocol work while stalled) override this.
        """
        yield self.barrier.arrive(node_id)

    def wait(self, node_id: int, future):
        """Generator: block ``node_id``'s thread on ``future``.

        The backend-agnostic way to wait for a completion (e.g. a bulk
        transfer): on machines whose nodes must service protocol work
        while stalled (no NP), this spins the dispatcher.
        """
        yield future

    # ------------------------------------------------------------------
    def run_workers(
        self, worker_factory: Callable[[int], Generator]
    ) -> dict[int, float]:
        """Run one worker generator per node to completion.

        ``worker_factory(node_id)`` produces the node's computation
        thread.  Returns per-node finish times; ``execution_time`` is the
        slowest node (the quantity Figure 3 reports).
        """
        self._finish_times = {}
        processes = []
        for node_id in range(self.num_nodes):
            process = Process(
                self.engine, worker_factory(node_id), name=f"cpu{node_id}"
            )
            process.finished.add_callback(
                lambda _value, node_id=node_id: self._record_finish(node_id)
            )
            processes.append(process)
        self.engine.run()
        unfinished = [p.name for p in processes if not p.finished.done]
        if unfinished:
            raise SimulationError(
                f"deadlock: workers never finished: {unfinished} "
                f"(clock={self.engine.now})"
            )
        self.execution_time = max(self._finish_times.values(), default=0)
        self.stats.set_max("machine.execution_time", self.execution_time)
        return dict(self._finish_times)

    def _record_finish(self, node_id: int) -> None:
        self._finish_times[node_id] = self.engine.now

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"cache={self.config.cache.size_bytes}B)"
        )
