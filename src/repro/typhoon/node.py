"""One Typhoon node: CPU, caches, TLB, tagged memory, and NP (Figure 1).

The node implements the :class:`~repro.tempest.interface.TempestBackend`
protocol — it is the hardware under the Tempest facade.

The CPU access path models the MBus semantics of Section 5.4:

* a hardware-cache hit needs no NP intervention and completes in a cycle;
* a miss becomes a bus transaction the NP monitors.  If the block's tag
  permits the access, the memory controller responds (Table 2's 29-cycle
  local miss); a read of a ReadOnly block has the "shared" line asserted
  so the CPU's copy is not owned;
* otherwise the transaction is a **block access fault**: the NP inhibits
  memory, nacks the transaction, masks the CPU's bus request (the thread
  suspends), and captures the fault in the BAF buffer for user-level
  handling.  ``resume`` unmasks the request line and the access retries.

Accesses to unmapped shared pages take the coarse-grain path: the
computation thread runs the protocol's user-level page-fault handler
(Section 2.3) and retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.memory.address import SHARED_BASE, AddressLayout
from repro.memory.cache import Cache, LineState
from repro.memory.data import MemoryImage
from repro.memory.mirror import (
    PAGE_MAPPED, READ_HIT, TLB_PRESENT, WRITE_HIT, AccessMirror,
)
from repro.memory.page_table import PageTable
from repro.memory.tags import Tag, TagStore
from repro.memory.tlb import Tlb
from repro.network.message import Message
from repro.sim.engine import SimulationError
from repro.tempest.interface import Tempest
from repro.tempest.messaging import HandlerRegistry
from repro.tempest.threads import ComputationThread
from repro.typhoon.np import NetworkProcessor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.typhoon.system import TyphoonMachine

#: fn(tempest, addr, is_write) -> extra cycles or None
PageFaultHandler = Callable[[Tempest, int, bool], int | None]


class TyphoonNode:
    """CPU + L1 + TLB + NP + DRAM, assembled per Figure 1."""

    def __init__(self, node_id: int, machine: "TyphoonMachine"):
        self.node_id = node_id
        self.machine = machine
        self.engine = machine.engine
        self.stats = machine.stats
        self.config = machine.config
        self.layout: AddressLayout = machine.layout
        self.heap = machine.heap
        self._prefix = f"node{node_id}"

        self.tags = TagStore(self.layout, node_id)
        self.page_table = PageTable(self.layout, self.tags, node_id)
        self.image = MemoryImage(self.layout, node_id)
        self.cache = Cache(
            machine.config.cache,
            machine.rng.stream(f"{self._prefix}.cache"),
            name=f"{self._prefix}.cache",
        )
        self.cpu_tlb = Tlb(machine.config.tlb, name=f"{self._prefix}.tlb")
        # Dense hit-probe mirror for the batched access lanes: the CPU
        # TLB, page table, and cache keep it coherent from their own
        # mutation paths (all miss-path or coherence-path events).
        self.mirror = AccessMirror(self.layout)
        self.cpu_tlb.mirror = self.mirror
        self.page_table.mirror = self.mirror
        self.cache.mirror = self.mirror
        self.thread = ComputationThread(self.engine, node_id)
        self.registry = HandlerRegistry(node_id)
        self.np = NetworkProcessor(self, machine.config.typhoon)
        self.tempest = Tempest(self)
        self.page_fault_handler: PageFaultHandler | None = None
        # Hot-path stat keys, precomputed so the per-reference path does
        # no string formatting.
        self._refs_key = f"{self._prefix}.cpu.refs"
        self._access_cycles_key = f"{self._prefix}.cpu.access_cycles"
        self._tlb_misses_key = f"{self._prefix}.cpu.tlb_misses"
        self._block_faults_key = f"{self._prefix}.cpu.block_faults"
        self._local_misses_key = f"{self._prefix}.cpu.local_misses"
        self._fills_killed_key = f"{self._prefix}.cpu.fills_killed"
        self._messages_sent_key = f"{self._prefix}.np.messages_sent"
        # Address arithmetic and container handles for the per-reference
        # path.  The TLB / page-table dicts are stable objects (cleared in
        # place, never reassigned), so caching them here is safe.
        layout = self.layout
        self._page_shift = layout.page_size.bit_length() - 1
        self._page_mask = ~(layout.page_size - 1)
        self._block_mask = ~(layout.block_size - 1)
        self._block_shift = layout.block_size.bit_length() - 1
        self._bpp_mask = layout.blocks_per_page - 1
        self._hit_cycles = self.config.cache_hit_cycles
        self._tlb_entries = self.cpu_tlb._entries
        self._pt_entries = self.page_table._entries
        self._counters = machine.stats._counters
        self._image_read = self.image.read
        self._image_write = self.image.write
        #: Blocks written since this node last gained them (the M-vs-E
        #: distinction an ownership bus provides); cleared on downgrade
        #: or invalidation.  Custom protocols use it (e.g. migratory
        #: detection probes).
        self.written_blocks: set[int] = set()

        machine.interconnect.attach(node_id, self.np.enqueue_message)

    # ------------------------------------------------------------------
    # TempestBackend surface
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.machine.num_nodes

    def send_message(self, message: Message) -> None:
        self._counters[self._messages_sent_key] += 1
        self.np.send(message)

    def invalidate_cpu_copy(self, block_addr: int) -> None:
        self.cache.invalidate(block_addr)
        self.written_blocks.discard(block_addr)

    def downgrade_cpu_copy(self, block_addr: int) -> None:
        self.cache.downgrade(block_addr)
        self.written_blocks.discard(block_addr)

    def shoot_down_page(self, vaddr: int) -> None:
        """TLB shoot-down after unmap/remap: CPU TLB and NP reverse TLB."""
        self.cpu_tlb.evict(self.layout.page_number(vaddr))
        self.np.rtlb.shoot_down(vaddr)

    def np_charge(self, cycles: int) -> None:
        self.np.charge(cycles)

    def install_faults(self, plan) -> None:
        """Node-level fault injection lives in the NP (queues, stalls)."""
        self.np.install_faults(plan)

    # ------------------------------------------------------------------
    # Protocol wiring
    # ------------------------------------------------------------------
    def set_page_fault_handler(self, handler: PageFaultHandler) -> None:
        self.page_fault_handler = handler

    # ------------------------------------------------------------------
    # CPU access path
    # ------------------------------------------------------------------
    def access_inline(self, addr: int, is_write: bool, value: Any = None):
        """Service a full TLB + cache hit without touching the event queue.

        The WWT direct-execution trick applied to CPython overhead: the
        common case — mapped page, TLB hit, cache hit, no pending event
        in the hit window — is detected with side-effect-free probes and
        then committed in one call: counters, data image, history, and
        the inline clock advance.  Returns ``(result,)`` on success, or
        None (having changed **nothing**) when the general :meth:`access`
        generator must run instead.

        The engine window is checked *first*: in lock-step multi-node
        phases another node almost always has an event inside the hit
        window, and that rejection must cost a couple of attribute reads,
        not a TLB/cache probe that :meth:`access` then repeats.
        """
        engine = self.engine
        if engine._fifo:
            return None
        hit_cycles = self._hit_cycles
        target = engine.now + hit_cycles
        queue = engine._queue
        if queue and queue[0][0] <= target:
            return None
        until = engine._until
        if until is not None and target > until:
            return None
        if (addr >> self._page_shift) not in self._tlb_entries:
            return None
        block = addr & self._block_mask
        line = self.cache.lookup(block)
        if line is None or (is_write and line.state is LineState.SHARED):
            return None
        shared = addr >= SHARED_BASE
        if shared and (addr & self._page_mask) not in self._pt_entries:
            return None
        # Commit: identical effects to the generator path's hit branch.
        # The probes above cannot schedule events, so the window check
        # still holds and the clock can move directly.
        engine.now = target
        self.cpu_tlb.hits += 1
        self.cache.hits += 1
        counters = self._counters
        counters[self._refs_key] += 1
        if is_write:
            self._image_write(addr, value)
            if shared:
                self.written_blocks.add(block)
            result = None
        else:
            result = value = self._image_read(addr)
        counters[self._access_cycles_key] += hit_cycles
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value,
                engine.now - hit_cycles, engine.now,
            )
        return (result,)

    # ------------------------------------------------------------------
    # Batched access lanes (vectorised reference engine)
    # ------------------------------------------------------------------
    def run_read_prefix(self, addrs, start: int, out: list) -> int:
        """Commit the longest all-hit prefix of ``addrs[start:]`` in bulk.

        One vectorised probe over the run: scan the dense mirrors for the
        first index that would not hit (or whose hit window an event
        intrudes on), then commit the whole prefix in one step — a single
        clock advance of ``n * hit_cycles``, counters bumped by ``n``,
        per-element data-image reads appended to ``out`` — with effects
        identical to ``n`` scalar inline hits.  Returns the index of the
        first element *not* committed; the caller services that element
        through the scalar path and retries the run from there.

        The lane deopts (returns ``start`` untouched, zero side effects)
        under a live fault plan or conformance monitor, and whenever the
        zero-delay FIFO is non-empty: the scalar decomposition is the
        oracle those modes observe.
        """
        engine = self.engine
        machine = self.machine
        if (engine._fifo or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        hit_cycles = self._hit_cycles
        queue = engine._queue
        now = engine.now
        # Reject before binding anything: in lock-step phases another
        # node's event usually sits inside the very first hit window,
        # and the lane must cost next to nothing when it loses.
        if queue:
            limit = queue[0][0]
            # Require room for at least two elements: a one-element
            # batch costs more in lane setup than the scalar inline
            # commit it replaces (under-claiming is always sound).
            if limit <= now + 2 * hit_cycles:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + hit_cycles > until:
            return start
        mirror = self.mirror
        # Cheap first-element probe: in miss phases the common reject is
        # an open window with a cold first element, and that reject must
        # not pay the full scan setup below.
        addr = addrs[start]
        page = addr >> self._page_shift
        need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                else TLB_PRESENT)
        if mirror.page_flags.get(page, 0) & need != need:
            return start
        probe = mirror.block_flags.get(page)
        if probe is None or not (
                probe[(addr >> self._block_shift) & self._bpp_mask]
                & READ_HIT):
            return start
        page_flags = mirror.page_flags
        block_flags = mirror.block_flags
        page_shift = self._page_shift
        block_shift = self._block_shift
        bpp_mask = self._bpp_mask
        image_read = self._image_read
        out_append = out.append
        out_base = len(out)

        target = now
        index = start
        total = len(addrs)
        current_page = -1
        blocks = None
        while index < total:
            step = target + hit_cycles
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            addr = addrs[index]
            page = addr >> page_shift
            if page != current_page:
                need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if not blocks[(addr >> block_shift) & bpp_mask] & READ_HIT:
                break
            out_append(image_read(addr))
            target = step
            index += 1

        n = index - start
        if n:
            # Batch commit: the per-element window checks above prove no
            # event fires inside [now, target], and the probes schedule
            # nothing, so this equals n sequential inline commits.
            engine.now = target
            self.cpu_tlb.hits += n
            self.cache.hits += n
            counters = self._counters
            counters[self._refs_key] += n
            counters[self._access_cycles_key] += n * hit_cycles
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    history.record(self.node_id, addrs[start + i], False,
                                   out[out_base + i], t, t + hit_cycles)
                    t += hit_cycles
        return index

    def run_plan_prefix(self, ops, start: int, out: list) -> int:
        """:meth:`run_read_prefix` generalised to mixed reads and writes.

        ``ops`` is a sequence of ``(addr, is_write, value)`` tuples; for
        each committed op a read appends its value to ``out`` and a write
        appends None.  A write needs the block resident EXCLUSIVE (the
        mirror's WRITE_HIT bit) — a write to a SHARED line is an upgrade
        miss and stops the prefix, exactly as the scalar lane rejects it.
        """
        engine = self.engine
        machine = self.machine
        if (engine._fifo or machine.fault_plan is not None
                or machine.conformance is not None):
            return start
        hit_cycles = self._hit_cycles
        queue = engine._queue
        now = engine.now
        if queue:
            limit = queue[0][0]
            # Require room for at least two elements: a one-element
            # batch costs more in lane setup than the scalar inline
            # commit it replaces (under-claiming is always sound).
            if limit <= now + 2 * hit_cycles:
                return start
        else:
            limit = None
        until = engine._until
        if until is not None and now + hit_cycles > until:
            return start
        mirror = self.mirror
        # Cheap first-element probe (see run_read_prefix).
        addr, is_write, value = ops[start]
        page = addr >> self._page_shift
        need = (TLB_PRESENT | PAGE_MAPPED if addr >= SHARED_BASE
                else TLB_PRESENT)
        if mirror.page_flags.get(page, 0) & need != need:
            return start
        probe = mirror.block_flags.get(page)
        if probe is None or not (
                probe[(addr >> self._block_shift) & self._bpp_mask]
                & (WRITE_HIT if is_write else READ_HIT)):
            return start
        page_flags = mirror.page_flags
        block_flags = mirror.block_flags
        page_shift = self._page_shift
        block_shift = self._block_shift
        bpp_mask = self._bpp_mask
        block_mask = self._block_mask
        image_read = self._image_read
        image_write = self._image_write
        written_add = self.written_blocks.add
        out_append = out.append
        out_base = len(out)

        target = now
        index = start
        total = len(ops)
        current_page = -1
        page_shared = False
        blocks = None
        while index < total:
            step = target + hit_cycles
            if limit is not None and limit <= step:
                break
            if until is not None and step > until:
                break
            addr, is_write, value = ops[index]
            page = addr >> page_shift
            if page != current_page:
                page_shared = addr >= SHARED_BASE
                need = (TLB_PRESENT | PAGE_MAPPED if page_shared
                        else TLB_PRESENT)
                if page_flags.get(page, 0) & need != need:
                    break
                blocks = block_flags.get(page)
                if blocks is None:
                    break
                current_page = page
            if not (blocks[(addr >> block_shift) & bpp_mask]
                    & (WRITE_HIT if is_write else READ_HIT)):
                break
            if is_write:
                image_write(addr, value)
                if page_shared:
                    written_add(addr & block_mask)
                out_append(None)
            else:
                out_append(image_read(addr))
            target = step
            index += 1

        n = index - start
        if n:
            engine.now = target
            self.cpu_tlb.hits += n
            self.cache.hits += n
            counters = self._counters
            counters[self._refs_key] += n
            counters[self._access_cycles_key] += n * hit_cycles
            history = machine.history
            if history is not None:
                t = now
                for i in range(n):
                    addr, is_write, value = ops[start + i]
                    if not is_write:
                        value = out[out_base + i]
                    history.record(self.node_id, addr, is_write, value,
                                   t, t + hit_cycles)
                    t += hit_cycles
        return index

    def access(self, addr: int, is_write: bool, value: Any = None) -> Generator:
        """One CPU load or store; a generator the worker drives.

        Returns the loaded value (reads) or None (writes).
        """
        counters = self._counters
        counters[self._refs_key] += 1
        start = self.engine.now
        if not self.cpu_tlb.access(addr >> self._page_shift):
            counters[self._tlb_misses_key] += 1
            yield self.config.tlb.miss_cycles

        shared = addr >= SHARED_BASE
        block = addr & self._block_mask
        while True:
            if shared and (addr & self._page_mask) not in self._pt_entries:
                yield from self._handle_page_fault(addr, is_write)
                continue
            if self.cache.access(block, is_write):
                yield self._hit_cycles
                return self._complete(addr, is_write, value, start)
            # Miss: a bus transaction, monitored by the NP for shared pages.
            if shared:
                fault = self.tags.check(addr, is_write)
                if fault is not None:
                    counters[self._block_faults_key] += 1
                    suspension = self.thread.suspend()
                    self.np.enqueue_fault(fault)
                    yield suspension
                    continue  # retry the whole access
            yield self.config.local_miss_cycles
            counters[self._local_misses_key] += 1
            if shared and self.tags.check(addr, is_write) is not None:
                # The NP invalidated (or downgraded) the block while our
                # fill was on the bus: the transaction ends "relinquish
                # and retry" instead of installing a stale line.  Loop;
                # the retried access takes the fault path properly.
                counters[self._fills_killed_key] += 1
                continue
            if shared and self.tags.read_tag(addr) is Tag.READ_ONLY:
                state = LineState.SHARED  # NP asserts the "shared" line
            else:
                state = LineState.EXCLUSIVE
            self.cache.insert(block, state)
            # Victim writeback to local DRAM costs 0 (perfect write buffer,
            # Table 2); the image already holds every store, so no data
            # movement is needed either.
            return self._complete(addr, is_write, value, start)

    def _complete(self, addr: int, is_write: bool, value: Any,
                  start: float) -> Any:
        if is_write:
            self._image_write(addr, value)
            if addr >= SHARED_BASE:
                self.written_blocks.add(addr & self._block_mask)
            result = None
        else:
            result = value = self._image_read(addr)
        self._counters[self._access_cycles_key] += self.engine.now - start
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value, start, self.engine.now
            )
        return result

    def _handle_page_fault(self, addr: int, is_write: bool) -> Generator:
        self.stats.incr(f"{self._prefix}.cpu.page_faults")
        if self.page_fault_handler is None:
            raise SimulationError(
                f"page fault at {addr:#x} on node {self.node_id} "
                "with no user-level handler installed"
            )
        # The user-level page fault handler runs on the primary CPU.
        yield self.machine.costs.page_fault
        extra = self.page_fault_handler(self.tempest, addr, is_write)
        if extra:
            yield extra

    def __repr__(self) -> str:
        return f"TyphoonNode({self.node_id})"
