"""One Typhoon node: CPU, caches, TLB, tagged memory, and NP (Figure 1).

The node implements the :class:`~repro.tempest.interface.TempestBackend`
protocol — it is the hardware under the Tempest facade.

The CPU access path models the MBus semantics of Section 5.4:

* a hardware-cache hit needs no NP intervention and completes in a cycle;
* a miss becomes a bus transaction the NP monitors.  If the block's tag
  permits the access, the memory controller responds (Table 2's 29-cycle
  local miss); a read of a ReadOnly block has the "shared" line asserted
  so the CPU's copy is not owned;
* otherwise the transaction is a **block access fault**: the NP inhibits
  memory, nacks the transaction, masks the CPU's bus request (the thread
  suspends), and captures the fault in the BAF buffer for user-level
  handling.  ``resume`` unmasks the request line and the access retries.

Accesses to unmapped shared pages take the coarse-grain path: the
computation thread runs the protocol's user-level page-fault handler
(Section 2.3) and retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.memory.address import AddressLayout
from repro.memory.cache import Cache, LineState
from repro.memory.data import MemoryImage
from repro.memory.page_table import PageTable
from repro.memory.tags import Tag, TagStore
from repro.memory.tlb import Tlb
from repro.network.message import Message
from repro.sim.engine import SimulationError
from repro.tempest.interface import Tempest
from repro.tempest.messaging import HandlerRegistry
from repro.tempest.threads import ComputationThread
from repro.typhoon.np import NetworkProcessor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.typhoon.system import TyphoonMachine

#: fn(tempest, addr, is_write) -> extra cycles or None
PageFaultHandler = Callable[[Tempest, int, bool], int | None]


class TyphoonNode:
    """CPU + L1 + TLB + NP + DRAM, assembled per Figure 1."""

    def __init__(self, node_id: int, machine: "TyphoonMachine"):
        self.node_id = node_id
        self.machine = machine
        self.engine = machine.engine
        self.stats = machine.stats
        self.config = machine.config
        self.layout: AddressLayout = machine.layout
        self.heap = machine.heap
        self._prefix = f"node{node_id}"

        self.tags = TagStore(self.layout, node_id)
        self.page_table = PageTable(self.layout, self.tags, node_id)
        self.image = MemoryImage(self.layout, node_id)
        self.cache = Cache(
            machine.config.cache,
            machine.rng.stream(f"{self._prefix}.cache"),
            name=f"{self._prefix}.cache",
        )
        self.cpu_tlb = Tlb(machine.config.tlb, name=f"{self._prefix}.tlb")
        self.thread = ComputationThread(self.engine, node_id)
        self.registry = HandlerRegistry(node_id)
        self.np = NetworkProcessor(self, machine.config.typhoon)
        self.tempest = Tempest(self)
        self.page_fault_handler: PageFaultHandler | None = None
        #: Blocks written since this node last gained them (the M-vs-E
        #: distinction an ownership bus provides); cleared on downgrade
        #: or invalidation.  Custom protocols use it (e.g. migratory
        #: detection probes).
        self.written_blocks: set[int] = set()

        machine.interconnect.attach(node_id, self.np.enqueue_message)

    # ------------------------------------------------------------------
    # TempestBackend surface
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.machine.num_nodes

    def send_message(self, message: Message) -> None:
        self.stats.incr(f"{self._prefix}.np.messages_sent")
        self.np.send(message)

    def invalidate_cpu_copy(self, block_addr: int) -> None:
        self.cache.invalidate(block_addr)
        self.written_blocks.discard(block_addr)

    def downgrade_cpu_copy(self, block_addr: int) -> None:
        self.cache.downgrade(block_addr)
        self.written_blocks.discard(block_addr)

    def shoot_down_page(self, vaddr: int) -> None:
        """TLB shoot-down after unmap/remap: CPU TLB and NP reverse TLB."""
        self.cpu_tlb.evict(self.layout.page_number(vaddr))
        self.np.rtlb.shoot_down(vaddr)

    def np_charge(self, cycles: int) -> None:
        self.np.charge(cycles)

    # ------------------------------------------------------------------
    # Protocol wiring
    # ------------------------------------------------------------------
    def set_page_fault_handler(self, handler: PageFaultHandler) -> None:
        self.page_fault_handler = handler

    # ------------------------------------------------------------------
    # CPU access path
    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool, value: Any = None) -> Generator:
        """One CPU load or store; a generator the worker drives.

        Returns the loaded value (reads) or None (writes).
        """
        self.stats.incr(f"{self._prefix}.cpu.refs")
        start = self.engine.now
        if not self.cpu_tlb.access(self.layout.page_number(addr)):
            self.stats.incr(f"{self._prefix}.cpu.tlb_misses")
            yield self.config.tlb.miss_cycles

        shared = AddressLayout.is_shared(addr)
        block = self.layout.block_of(addr)
        while True:
            if shared and not self.page_table.is_mapped(addr):
                yield from self._handle_page_fault(addr, is_write)
                continue
            if self.cache.access(block, is_write):
                yield self.config.cache_hit_cycles
                return self._complete(addr, is_write, value, start)
            # Miss: a bus transaction, monitored by the NP for shared pages.
            if shared:
                fault = self.tags.check(addr, is_write)
                if fault is not None:
                    self.stats.incr(f"{self._prefix}.cpu.block_faults")
                    suspension = self.thread.suspend()
                    self.np.enqueue_fault(fault)
                    yield suspension
                    continue  # retry the whole access
            yield self.config.local_miss_cycles
            self.stats.incr(f"{self._prefix}.cpu.local_misses")
            if shared and self.tags.check(addr, is_write) is not None:
                # The NP invalidated (or downgraded) the block while our
                # fill was on the bus: the transaction ends "relinquish
                # and retry" instead of installing a stale line.  Loop;
                # the retried access takes the fault path properly.
                self.stats.incr(f"{self._prefix}.cpu.fills_killed")
                continue
            if shared and self.tags.read_tag(addr) is Tag.READ_ONLY:
                state = LineState.SHARED  # NP asserts the "shared" line
            else:
                state = LineState.EXCLUSIVE
            self.cache.insert(block, state)
            # Victim writeback to local DRAM costs 0 (perfect write buffer,
            # Table 2); the image already holds every store, so no data
            # movement is needed either.
            return self._complete(addr, is_write, value, start)

    def _complete(self, addr: int, is_write: bool, value: Any,
                  start: float) -> Any:
        if is_write:
            self.image.write(addr, value)
            if AddressLayout.is_shared(addr):
                self.written_blocks.add(self.layout.block_of(addr))
            result = None
        else:
            result = value = self.image.read(addr)
        self.stats.incr(f"{self._prefix}.cpu.access_cycles",
                        self.engine.now - start)
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value, start, self.engine.now
            )
        return result

    def _handle_page_fault(self, addr: int, is_write: bool) -> Generator:
        self.stats.incr(f"{self._prefix}.cpu.page_faults")
        if self.page_fault_handler is None:
            raise SimulationError(
                f"page fault at {addr:#x} on node {self.node_id} "
                "with no user-level handler installed"
            )
        # The user-level page fault handler runs on the primary CPU.
        yield self.config.typhoon.page_fault_instructions
        extra = self.page_fault_handler(self.tempest, addr, is_write)
        if extra:
            yield extra

    def __repr__(self) -> str:
        return f"TyphoonNode({self.node_id})"
