"""The Typhoon hardware model (paper Section 5).

Typhoon is the paper's proposed implementation of Tempest: commodity
SPARC/MBus nodes plus one custom device per node, the **network interface
processor (NP)** — a previous-generation integer core tightly coupled to
the network interface, with a TLB, a reverse TLB (RTLB) holding per-block
access tags, a block-access-fault (BAF) buffer, and a hardware-assisted
dispatch loop that runs user-level handlers to completion.

The model charges the paper's costs: one cycle per NP instruction, the
Table 2 cache/TLB/RTLB penalties, and the Section 6 handler path lengths.
"""

from repro.typhoon.np import NetworkProcessor
from repro.typhoon.rtlb import ReverseTlb
from repro.typhoon.node import TyphoonNode
from repro.typhoon.system import TyphoonMachine

__all__ = [
    "NetworkProcessor",
    "ReverseTlb",
    "TyphoonMachine",
    "TyphoonNode",
]
