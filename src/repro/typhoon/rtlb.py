"""The reverse TLB (paper Section 5.4).

The NP snoops physical addresses on the MBus, so it needs a
physical-page-indexed structure to find a block's tag quickly: the RTLB.
Each entry holds two tag bits per 32-byte block (ReadWrite / ReadOnly /
Invalid / Busy), the virtual page number, a four-bit *page mode* used with
the access type to select the fault handler, and 48 bits of uninterpreted
user state (Stache keeps a home-node id and a directory pointer there).

In this model the authoritative tag array is the node's
:class:`~repro.memory.tags.TagStore` (hardware would keep it in the RTLB
entry and spill to memory); the RTLB contributes *timing*: a transaction
that misses is nacked with "relinquish and retry" while the entry is
fetched from memory, modelled as the Table 2 RTLB miss penalty.  An entry
can alternatively mark a large untagged region (text/kernel) — private
memory here — which never charges tag-check cost.
"""

from __future__ import annotations

from repro.memory.address import AddressLayout
from repro.memory.tlb import Tlb
from repro.sim.config import TlbConfig


class ReverseTlb:
    """Physical-page-indexed tag cache; misses cost ``miss_cycles``."""

    def __init__(self, entries: int, miss_cycles: int, layout: AddressLayout):
        self.layout = layout
        self._tlb = Tlb(
            TlbConfig(entries=entries, miss_cycles=miss_cycles), name="rtlb"
        )
        self.miss_cycles = miss_cycles
        # Hot-probe aliases: the TLB's entry dict is cleared/popped in
        # place, never reassigned, so the alias stays valid.
        self._entries = self._tlb._entries
        self._page_shift = layout.page_size.bit_length() - 1

    def probe(self, addr: int) -> int:
        """Probe for the page holding ``addr``; returns the cycle penalty.

        0 on a hit; ``miss_cycles`` on a miss (the entry is fetched and
        installed, FIFO-replacing the oldest).
        """
        page = addr >> self._page_shift
        if page in self._entries:
            self._tlb.hits += 1
            return 0
        self._tlb.access(page)
        return self.miss_cycles

    def shoot_down(self, addr: int) -> None:
        """Drop the entry for a page (unmap/remap)."""
        self._tlb.evict(self.layout.page_number(addr))

    @property
    def hits(self) -> int:
        return self._tlb.hits

    @property
    def misses(self) -> int:
        return self._tlb.misses

    def __repr__(self) -> str:
        return f"ReverseTlb(hits={self.hits}, misses={self.misses})"
