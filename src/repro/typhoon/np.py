"""The network interface processor (NP), paper Sections 5.1 and 5.4.

The NP is a serial, run-to-completion processor.  Its hardware-assisted
dispatch loop selects the next piece of work from three sources:

1. the **response** virtual network's receive queue (highest priority, so
   request handlers can never starve response handlers — the deadlock-
   avoidance discipline of Section 5.1),
2. the **block access fault (BAF) buffer** — faults captured from the MBus,
3. the **request** virtual network's receive queue (lowest priority).

Each dispatched handler is charged its registered instruction count (one
cycle per instruction, Section 6) plus any TLB/RTLB miss penalties its
dispatch incurred; its externally visible effects (sends, tag updates,
``resume``) take place when that charge has elapsed.  Handlers may extend
their own charge for data-dependent work via
:meth:`~repro.tempest.interface.Tempest.charge`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.memory.tags import AccessFault
from repro.memory.tlb import Tlb
from repro.network.message import Message, NACK_HANDLER, VirtualNetwork
from repro.sim.config import TlbConfig, TyphoonCosts
from repro.sim.engine import SimulationError
from repro.typhoon.rtlb import ReverseTlb

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.typhoon.node import TyphoonNode


class DispatchError(SimulationError):
    """No fault handler registered for a (mode, access, tag) combination."""


class NetworkProcessor:
    """One node's NP: queues, dispatch loop, and cost accounting."""

    def __init__(self, node: "TyphoonNode", costs: TyphoonCosts):
        self.node = node
        self.costs = costs
        self.engine = node.engine
        self.stats = node.stats
        self._prefix = f"node{node.node_id}.np"
        # Hot-path stat keys, precomputed so the per-message path does no
        # string formatting.
        self._received_key = f"{self._prefix}.messages_received"
        self._handler_cycles_key = f"{self._prefix}.handler_cycles"
        self._np_tlb_misses_key = f"{self._prefix}.np_tlb_misses"
        self._block_faults_key = f"{self._prefix}.block_faults"
        self._page_shift = node.layout.page_size.bit_length() - 1
        # Raw counter dict (defaultdict) and handler table, cached so the
        # per-message path skips two method calls.
        self._counters = node.stats._counters
        self._handlers = node.registry._handlers

        self._response_queue: deque[Message] = deque()
        self._request_queue: deque[Message] = deque()
        self._baf_buffer: deque[AccessFault] = deque()
        self._busy = False
        self._extra_charge = 0

        self.np_tlb = Tlb(
            TlbConfig(entries=costs.np_tlb_entries, miss_cycles=costs.np_tlb_miss),
            name="np_tlb",
        )
        self.rtlb = ReverseTlb(costs.rtlb_entries, costs.rtlb_miss, node.layout)

        # (page mode, is_write) -> handler name.  Section 5.4: the page
        # mode, access type and tag select the fault handler PC; the tag
        # is implied (only faulting combinations dispatch), so the key is
        # (mode, is_write).
        self._fault_dispatch: dict[tuple[int, bool], str] = {}

        # Section 5.1 send-side plumbing: finite per-vnet send queues with
        # a transparent overflow buffer so handlers never block on space.
        self._in_flight: dict[int, int] = {0: 0, 1: 0}
        self._overflow: deque[Message] = deque()
        self._send_depth = costs.send_queue_depth

        # Fault injection (repro.network.faults): all inert until
        # install_faults is called with a live plan.
        self._node_id = node.node_id
        self._fault_plan = None  # non-None only when stall windows are on
        self._recv_limit: int | None = None
        self._baf_limit: int | None = None
        self._stall_wake = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan) -> None:
        """Apply a bound FaultPlan's node-level bounds and stall windows."""
        spec = plan.spec
        self._fault_plan = plan if spec.stall_every else None
        self._recv_limit = spec.recv_queue_limit
        self._baf_limit = spec.baf_limit
        if spec.send_queue_depth is not None:
            self._send_depth = spec.send_queue_depth

    def _nack(self, message: Message) -> None:
        """Refuse an arriving tracked request: bounce an NI-level NACK.

        The NACK travels on the response network (it must always sink)
        and is consumed by the sender's interconnect, never dispatched;
        ``message.nacked`` tells the delivery path that this delivery did
        not constitute receipt.
        """
        message.nacked = True
        self.stats.incr(f"{self._prefix}.nacks_sent")
        self.stats.incr("tempest.nacks_sent")
        self.node.machine.interconnect.send(Message(
            src=self._node_id, dst=message.src, handler=NACK_HANDLER,
            vnet=VirtualNetwork.RESPONSE, size_words=2,
            payload={"xid": message.xid},
        ))

    # ------------------------------------------------------------------
    # Sending (finite send queues + overflow buffer, Section 5.1)
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Inject a packet, or park it in the overflow buffer if the
        virtual network's send queue is full.

        "If a send queue fills, the hardware will redirect further stores
        to this buffer transparently.  This guarantees that any handler,
        once started, can run to completion without waiting for a send
        queue to empty.  The user buffer is drained into the network by
        software as queue space becomes available."
        """
        vnet = message.vnet
        if self._in_flight[vnet] >= self._send_depth:
            self._overflow.append(message)
            self.stats.incr(f"{self._prefix}.sends_overflowed")
            self.stats.set_max(
                f"{self._prefix}.overflow_peak", len(self._overflow)
            )
            return
        self._in_flight[vnet] += 1
        self._launch(message)

    def _inject(self, message: Message) -> None:
        self._in_flight[message.vnet] += 1
        self._launch(message)

    def _launch(self, message: Message) -> None:
        message.on_delivered = self._on_delivered
        self.node.machine.interconnect.send(message)

    def _on_delivered(self, message: Message) -> None:
        """Credit return: queue space freed; drain the overflow buffer."""
        self._in_flight[message.vnet] -= 1
        if not self._overflow:
            return
        for index, waiting in enumerate(self._overflow):
            vnet = waiting.vnet
            if self._in_flight[vnet] < self._send_depth:
                del self._overflow[index]
                # Reserve the slot immediately so a concurrent credit
                # cannot oversubscribe it; the software drain takes a few
                # cycles to move the packet into the queue.
                self._in_flight[vnet] += 1
                self.engine.schedule(
                    self.costs.overflow_drain_cycles, self._launch, waiting
                )
                break

    # ------------------------------------------------------------------
    # Work arrival
    # ------------------------------------------------------------------
    def enqueue_message(self, message: Message) -> None:
        """Receive-queue arrival (called by the interconnect)."""
        if message.vnet is VirtualNetwork.RESPONSE:
            self._response_queue.append(message)
        else:
            # Bounded receive queue (fault injection): only tracked
            # requests are refused — responses must always sink, and
            # untracked messages have no retransmit path.
            if (self._recv_limit is not None and message.xid is not None
                    and len(self._request_queue) >= self._recv_limit):
                self._nack(message)
                return
            self._request_queue.append(message)
        self._counters[self._received_key] += 1
        self._pump()

    def enqueue_fault(self, fault: AccessFault) -> None:
        """BAF-buffer arrival (the bus monitor captured a faulting access)."""
        self._counters[self._block_faults_key] += 1
        for observer in getattr(self.node.machine, "fault_observers", ()):
            observer(fault)
        self._present_fault(fault)

    def _present_fault(self, fault: AccessFault) -> None:
        """Place a fault in the BAF buffer, honouring its capacity bound.

        On overflow the bus monitor re-presents the fault after a drain
        delay (the Section 4 overflow discussion: faults back up on the
        bus, they are never lost).  Counted once as a block fault at
        capture time, however many presentation attempts it takes.
        """
        if (self._baf_limit is not None
                and len(self._baf_buffer) >= self._baf_limit):
            self.stats.incr(f"{self._prefix}.baf_overflows")
            self.engine.schedule(
                self.costs.overflow_drain_cycles, self._present_fault, fault
            )
            return
        self._baf_buffer.append(fault)
        self._pump()

    def set_fault_handler(self, mode: int, is_write: bool, handler: str) -> None:
        """Bind a block-access-fault handler for a page mode + access type."""
        self._fault_dispatch[(mode, is_write)] = handler

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy:
            return
        plan = self._fault_plan
        if plan is not None:
            # Periodic stall windows: the dispatch loop freezes; queued
            # work waits for the scheduled wake.  Nothing is lost.
            if self._stall_wake:
                return
            wake = plan.stall_until(self._node_id, self.engine.now)
            if wake is not None:
                self._stall_wake = True
                self.stats.incr(f"{self._prefix}.stalls")
                self.engine.schedule_at(wake, self._end_stall)
                return
        if self._response_queue:
            self._start_message(self._response_queue.popleft())
        elif self._baf_buffer:
            self._start_fault(self._baf_buffer.popleft())
        elif self._request_queue:
            self._start_message(self._request_queue.popleft())

    def _start_message(self, message: Message) -> None:
        spec = self._handlers.get(message.handler)
        if spec is None:
            spec = self.node.registry.lookup(message.handler)  # raises
        cost = spec.instructions * self.costs.cycles_per_instruction
        # Handlers that touch a block's memory go through the NP TLB.
        addr = message.payload.get("addr")
        if addr is not None:
            if not self.np_tlb.access(addr >> self._page_shift):
                cost += self.costs.np_tlb_miss
                self._counters[self._np_tlb_misses_key] += 1
        self._begin(cost, spec.fn, message)

    def _start_fault(self, fault: AccessFault) -> None:
        entry = self.node.page_table.lookup(fault.addr)
        if entry is None:
            raise DispatchError(
                f"BAF for unmapped page {fault.addr:#x} on node "
                f"{self.node.node_id}"
            )
        handler_name = self._fault_dispatch.get((entry.mode, fault.is_write))
        if handler_name is None:
            raise DispatchError(
                f"no fault handler for mode={entry.mode} "
                f"is_write={fault.is_write} on node {self.node.node_id}"
            )
        spec = self.node.registry.lookup(handler_name)
        cost = (
            self.costs.baf_dispatch_cycles
            + spec.instructions * self.costs.cycles_per_instruction
            + self.rtlb.probe(fault.addr)
        )
        self._begin(cost, spec.fn, fault)

    def _begin(self, cost: int, fn, argument) -> None:
        self._busy = True
        self._counters[self._handler_cycles_key] += cost
        self.engine.schedule(cost, self._execute, fn, argument)

    def _execute(self, fn, argument) -> None:
        self._extra_charge = 0
        fn(self.node.tempest, argument)
        monitor = self.node.machine.conformance
        if monitor is not None:
            monitor.after_handler(self._node_id, argument)
        extra = self._extra_charge
        self._extra_charge = 0
        if extra:
            self._counters[self._handler_cycles_key] += extra
            self.engine.schedule(extra, self._finish)
        else:
            self._finish()

    def _finish(self) -> None:
        self._busy = False
        self._pump()

    def _end_stall(self) -> None:
        self._stall_wake = False
        self._pump()

    # ------------------------------------------------------------------
    def charge(self, cycles: int) -> None:
        """Extend the currently executing handler's occupancy."""
        if cycles < 0:
            raise SimulationError("cannot charge negative cycles")
        self._extra_charge += cycles

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queued_work(self) -> int:
        return (
            len(self._response_queue)
            + len(self._request_queue)
            + len(self._baf_buffer)
        )

    def __repr__(self) -> str:
        state = "busy" if self._busy else "idle"
        return f"NetworkProcessor(node={self.node.node_id}, {state}, queued={self.queued_work})"
