"""Whole-machine assembly for Typhoon.

A :class:`TyphoonMachine` is the simulated analogue of Figure 1: N
homogeneous nodes on a point-to-point network, each with an NP.  A
user-level protocol (Stache, or a custom one) is *installed* onto the
machine — it registers its message and fault handlers on every node,
exactly as linking against the Stache runtime library does in the paper.
"""

from __future__ import annotations

from repro.machine import MachineBase
from repro.sim.config import MachineConfig
from repro.tempest.port import CostDomain
from repro.typhoon.node import TyphoonNode


class TyphoonMachine(MachineBase):
    """N Typhoon nodes plus interconnect; runs user-level protocols."""

    system_name = "typhoon"

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        self.costs = CostDomain.from_typhoon(config.typhoon)
        self.nodes: list[TyphoonNode] = [
            TyphoonNode(node_id, self) for node_id in range(config.nodes)
        ]
        self.protocol = None

    @property
    def tempests(self) -> list:
        """The per-node Tempest interfaces (what user-level code sees)."""
        return [node.tempest for node in self.nodes]

    def install_protocol(self, protocol) -> None:
        """Install a user-level protocol library on every node."""
        if self.protocol is not None:
            raise RuntimeError("a protocol is already installed")
        self.protocol = protocol
        protocol.install(self)
        self._maybe_auto_conformance()

    def use_software_barrier(self, coordinator: int = 0) -> None:
        """Replace the hardware barrier network with a message-built one.

        For machines without a CM-5-style control network (and for the
        barrier-cost ablation): applications' ``ctx.barrier()`` then runs
        over active messages (`repro.tempest.swbarrier`).
        """
        from repro.tempest.swbarrier import SoftwareBarrier

        self._software_barrier = SoftwareBarrier(
            self.tempests, coordinator=coordinator)

    def barrier_wait(self, node_id: int):
        barrier = getattr(self, "_software_barrier", None)
        if barrier is None:
            yield self.barrier.arrive(node_id)
        else:
            yield from barrier.arrive(node_id)

    def __repr__(self) -> str:
        protocol = type(self.protocol).__name__ if self.protocol else "none"
        return (
            f"TyphoonMachine(nodes={self.num_nodes}, protocol={protocol}, "
            f"cache={self.config.cache.size_bytes}B)"
        )
