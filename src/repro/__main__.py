"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:  # piping into head/less is fine
    code = 0
sys.exit(code)
