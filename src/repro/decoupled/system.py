"""Whole-machine assembly for the decoupled software-handler backend.

A :class:`DecoupledMachine` is N dual-processor commodity nodes on a
point-to-point network: each node's compute CPU runs the application
with Blizzard-style inserted access checks, and its handler processor
runs the protocol library concurrently (see
:mod:`repro.decoupled.node`).  Because handlers make progress without
the compute thread's cooperation, the machine keeps
:class:`~repro.machine.MachineBase`'s bare-future ``wait`` and hardware
``barrier_wait`` — the ``decoupled-handlers`` guarantee that legalises
protocols (like the em3d update protocol) whose handlers must run while
the compute thread blocks.
"""

from __future__ import annotations

from repro.decoupled.node import DecoupledNode
from repro.machine import MachineBase
from repro.sim.config import MachineConfig
from repro.tempest.port import CostDomain


class DecoupledMachine(MachineBase):
    """N decoupled nodes plus interconnect; runs user-level protocols."""

    system_name = "decoupled"

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        self.costs = CostDomain.from_decoupled(config.decoupled)
        self.nodes: list[DecoupledNode] = [
            DecoupledNode(node_id, self) for node_id in range(config.nodes)
        ]
        self.protocol = None

    @property
    def tempests(self) -> list:
        """The per-node Tempest interfaces (what user-level code sees)."""
        return [node.tempest for node in self.nodes]

    def install_protocol(self, protocol) -> None:
        """Install a user-level protocol library on every node."""
        if self.protocol is not None:
            raise RuntimeError("a protocol is already installed")
        self.protocol = protocol
        protocol.install(self)
        self._maybe_auto_conformance()

    def __repr__(self) -> str:
        protocol = type(self.protocol).__name__ if self.protocol else "none"
        return (
            f"DecoupledMachine(nodes={self.num_nodes}, protocol={protocol}, "
            f"cache={self.config.cache.size_bytes}B)"
        )
