"""A decoupled node: software access control, handlers on a second CPU.

The node implements the same :class:`~repro.tempest.interface.Tempest`
backend surface as the other backends, so user-level protocol libraries
load unchanged.  It is the middle point of the paper's design space:

* **Tag checks** are inserted code, exactly as on Blizzard: each checked
  load/store pays the configured software check cost (0 for loads under
  the ECC trick).
* **No inserted polls.**  Unlike Blizzard, the compute CPU never polls
  the network — the *handler processor* (a second commodity CPU per
  node) watches it, running a software dispatch loop that polls an
  inbox and executes protocol handlers concurrently with computation.
  Handler instruction counts are charged to the handler processor's own
  timeline, so handler work overlaps compute work, as on Typhoon — but
  every dispatch pays the polling loop's notice latency plus a software
  dispatch sequence instead of the NP's hardware-assisted capture.
* **Fault handling** is Typhoon-shaped: a faulting access suspends the
  compute thread and enqueues the fault to the handler processor; the
  handler's ``resume`` restarts the thread.

:class:`DecoupledNode` subclasses :class:`~repro.blizzard.node.BlizzardNode`
for the shared software-Tempest state (tag store, page table, inserted
check costs, the batched access lanes) and overrides the paths where the
second CPU changes the story: message arrival, fault handling, and the
per-reference cost (no poll term).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from repro.blizzard.node import BlizzardNode
from repro.memory.address import SHARED_BASE
from repro.memory.cache import LineState
from repro.memory.tags import AccessFault, Tag
from repro.network.message import Message, NACK_HANDLER, VirtualNetwork
from repro.sim.config import DecoupledCosts
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.decoupled.system import DecoupledMachine


class DispatchError(SimulationError):
    """No fault handler registered for a (mode, access) combination."""


class HandlerProcessor:
    """One node's second CPU: a software dispatch loop polling an inbox.

    The software analogue of Typhoon's
    :class:`~repro.typhoon.np.NetworkProcessor`: serial,
    run-to-completion, same work priority (response network first, then
    captured faults, then requests — the Section 5.1 deadlock-avoidance
    discipline), same occupancy accounting.  What differs is the
    dispatch cost — ``poll_notice_cycles + dispatch_cycles`` of software
    loop per work item instead of hardware-assisted capture — and the
    absence of the NP's hardware plumbing (no NP TLB, no RTLB, no
    finite send queues: sends go straight to the interconnect, as on
    any commodity node).
    """

    def __init__(self, node: "DecoupledNode", costs: DecoupledCosts):
        self.node = node
        self.costs = costs
        self.engine = node.engine
        self.stats = node.stats
        self._prefix = f"node{node.node_id}.hp"
        # Hot-path stat keys, precomputed so the per-message path does no
        # string formatting.
        self._received_key = f"{self._prefix}.messages_received"
        self._handler_cycles_key = f"{self._prefix}.handler_cycles"
        self._handlers_run_key = f"{self._prefix}.handlers_run"
        self._block_faults_key = f"{self._prefix}.block_faults"
        self._counters = node.stats._counters
        self._handlers = node.registry._handlers

        self._response_queue: deque[Message] = deque()
        self._request_queue: deque[Message] = deque()
        self._fault_queue: deque[AccessFault] = deque()
        self._busy = False
        self._extra_charge = 0
        # Per-dispatch software overhead, folded once.
        self._dispatch_cost = costs.poll_notice_cycles + costs.dispatch_cycles

        # (page mode, is_write) -> handler name, as on the NP.
        self._fault_dispatch: dict[tuple[int, bool], str] = {}

        # Fault injection: all inert until install_faults runs a live plan.
        self._node_id = node.node_id
        self._fault_plan = None  # non-None only when stall windows are on
        self._recv_limit: int | None = None
        self._stall_wake = False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan) -> None:
        """Apply a bound FaultPlan's inbox bound and stall windows.

        Send-queue and BAF bounds are NP hardware concepts and do not
        apply here: sends go straight to the interconnect, and the fault
        queue is ordinary memory shared with the compute CPU.
        """
        spec = plan.spec
        self._fault_plan = plan if spec.stall_every else None
        self._recv_limit = spec.recv_queue_limit

    def _nack(self, message: Message) -> None:
        """Refuse an arriving tracked request: bounce an NI-level NACK."""
        message.nacked = True
        self.stats.incr(f"{self._prefix}.nacks_sent")
        self.stats.incr("tempest.nacks_sent")
        self.node.machine.interconnect.send(Message(
            src=self._node_id, dst=message.src, handler=NACK_HANDLER,
            vnet=VirtualNetwork.RESPONSE, size_words=2,
            payload={"xid": message.xid},
        ))

    # ------------------------------------------------------------------
    # Work arrival
    # ------------------------------------------------------------------
    def enqueue_message(self, message: Message) -> None:
        """Receive-queue arrival (called by the interconnect)."""
        if message.vnet is VirtualNetwork.RESPONSE:
            self._response_queue.append(message)
        else:
            # Bounded receive queue (fault injection): only tracked
            # requests are refused — responses must always sink, and
            # untracked messages have no retransmit path.
            if (self._recv_limit is not None and message.xid is not None
                    and len(self._request_queue) >= self._recv_limit):
                self._nack(message)
                return
            self._request_queue.append(message)
        self._counters[self._received_key] += 1
        self._pump()

    def enqueue_fault(self, fault: AccessFault) -> None:
        """The compute CPU parked a faulting access's descriptor for us."""
        self._counters[self._block_faults_key] += 1
        for observer in getattr(self.node.machine, "fault_observers", ()):
            observer(fault)
        self._fault_queue.append(fault)
        self._pump()

    def set_fault_handler(self, mode: int, is_write: bool, handler: str) -> None:
        """Bind a block-access-fault handler for a page mode + access type."""
        self._fault_dispatch[(mode, is_write)] = handler

    def fault_handler_for(self, mode: int, is_write: bool) -> str:
        handler = self._fault_dispatch.get((mode, is_write))
        if handler is None:
            raise DispatchError(
                f"no fault handler for mode={mode} is_write={is_write} "
                f"on node {self._node_id}"
            )
        return handler

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy:
            return
        plan = self._fault_plan
        if plan is not None:
            # Periodic stall windows: the dispatch loop freezes; queued
            # work waits for the scheduled wake.  Nothing is lost.
            if self._stall_wake:
                return
            wake = plan.stall_until(self._node_id, self.engine.now)
            if wake is not None:
                self._stall_wake = True
                self.stats.incr(f"{self._prefix}.stalls")
                self.engine.schedule_at(wake, self._end_stall)
                return
        if self._response_queue:
            self._start_message(self._response_queue.popleft())
        elif self._fault_queue:
            self._start_fault(self._fault_queue.popleft())
        elif self._request_queue:
            self._start_message(self._request_queue.popleft())

    def _start_message(self, message: Message) -> None:
        spec = self._handlers.get(message.handler)
        if spec is None:
            spec = self.node.registry.lookup(message.handler)  # raises
        cost = (
            self._dispatch_cost
            + spec.instructions * self.costs.cycles_per_instruction
        )
        self._begin(cost, spec.fn, message)

    def _start_fault(self, fault: AccessFault) -> None:
        entry = self.node.page_table.lookup(fault.addr)
        if entry is None:
            raise DispatchError(
                f"fault for unmapped page {fault.addr:#x} on node "
                f"{self._node_id}"
            )
        handler_name = self.fault_handler_for(entry.mode, fault.is_write)
        spec = self.node.registry.lookup(handler_name)
        cost = (
            self._dispatch_cost
            + spec.instructions * self.costs.cycles_per_instruction
        )
        self._begin(cost, spec.fn, fault)

    def _begin(self, cost: int, fn, argument) -> None:
        self._busy = True
        self._counters[self._handler_cycles_key] += cost
        self.engine.schedule(cost, self._execute, fn, argument)

    def _execute(self, fn, argument) -> None:
        self._extra_charge = 0
        self._counters[self._handlers_run_key] += 1
        fn(self.node.tempest, argument)
        monitor = self.node.machine.conformance
        if monitor is not None:
            monitor.after_handler(self._node_id, argument)
        extra = self._extra_charge
        self._extra_charge = 0
        if extra:
            self._counters[self._handler_cycles_key] += extra
            self.engine.schedule(extra, self._finish)
        else:
            self._finish()

    def _finish(self) -> None:
        self._busy = False
        self._pump()

    def _end_stall(self) -> None:
        self._stall_wake = False
        self._pump()

    # ------------------------------------------------------------------
    def charge(self, cycles: int) -> None:
        """Extend the currently executing handler's occupancy."""
        if cycles < 0:
            raise SimulationError("cannot charge negative cycles")
        self._extra_charge += cycles

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queued_work(self) -> int:
        return (
            len(self._response_queue)
            + len(self._request_queue)
            + len(self._fault_queue)
        )

    def __repr__(self) -> str:
        state = "busy" if self._busy else "idle"
        return (
            f"HandlerProcessor(node={self._node_id}, {state}, "
            f"queued={self.queued_work})"
        )


class DecoupledNode(BlizzardNode):
    """CPU + cache + TLB + software Tempest; handlers on a second CPU."""

    def __init__(self, node_id: int, machine: "DecoupledMachine"):
        super().__init__(node_id, machine)
        # Re-resolve everything the base class derived from the Blizzard
        # cost section: this backend bills from config.decoupled.
        self.costs = machine.config.decoupled
        costs = self.costs
        # Per-element lane costs: no inserted poll — the handler
        # processor watches the network — so a checked shared hit is
        # just inserted check + cache hit.
        self._shared_read_cost = costs.check_read_cycles + self._hit_cycles
        self._shared_write_cost = costs.check_write_cycles + self._hit_cycles
        self._fills_killed_key = f"{self._prefix}.cpu.fills_killed"
        self._messages_sent_key = f"{self._prefix}.hp.messages_sent"
        # The second CPU.  It replaces the base class's SoftwareDispatcher
        # as ``np`` — the NP-shaped object protocols program against —
        # and as the interconnect sink (``_receive`` below forwards, so
        # the sink the base class attached already routes here).
        self.hp = HandlerProcessor(self, costs)
        self.np = self.hp

    # ------------------------------------------------------------------
    # Message arrival: straight to the handler processor
    # ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        self.hp.enqueue_message(message)

    def install_faults(self, plan) -> None:
        """Apply a bound FaultPlan to the handler processor."""
        self.hp.install_faults(plan)

    # ------------------------------------------------------------------
    # CPU access path
    # ------------------------------------------------------------------
    def access_inline(self, addr: int, is_write: bool, value: Any = None):
        """Service a checked-hit access without touching the event queue.

        The decoupled common case is a shared reference whose inserted
        tag check passes and whose block hits in the hardware cache —
        cheaper than Blizzard's (no poll term), and safe on the same
        argument as Typhoon's: any pending handler-processor work has a
        scheduled engine event, so the engine-window check subsumes an
        inbox probe.  Returns ``(result,)`` on success, or None
        (side-effect free) when :meth:`access` must run.
        """
        engine = self.engine
        if engine._fifo:
            return None
        shared = addr >= SHARED_BASE
        if shared:
            costs = self.costs
            cycles = self._hit_cycles + (
                costs.check_write_cycles if is_write else costs.check_read_cycles
            )
        else:
            cycles = self._hit_cycles
        target = engine.now + cycles
        queue = engine._queue
        if queue and queue[0][0] <= target:
            return None
        until = engine._until
        if until is not None and target > until:
            return None
        if (addr >> self._page_shift) not in self._tlb_entries:
            return None
        if shared and (addr & self._page_mask) not in self._pt_entries:
            return None
        block = addr & self._block_mask
        line = self.cache.lookup(block)
        if line is None or (is_write and line.state is LineState.SHARED):
            return None
        # Commit: identical effects to the generator path's hit branch.
        engine.now = target
        self.cpu_tlb.hits += 1
        self.cache.hits += 1
        counters = self._counters
        counters[self._refs_key] += 1
        if is_write:
            self._image_write(addr, value)
            if shared:
                self.written_blocks.add(block)
            result = None
        else:
            result = value = self._image_read(addr)
        counters[self._access_cycles_key] += cycles
        if self.machine.history is not None:
            self.machine.history.record(
                self.node_id, addr, is_write, value,
                engine.now - cycles, engine.now,
            )
        return (result,)

    def access(self, addr: int, is_write: bool, value: Any = None) -> Generator:
        counters = self._counters
        counters[self._refs_key] += 1
        start = self.engine.now
        shared = addr >= SHARED_BASE
        if not self.cpu_tlb.access(addr >> self._page_shift):
            counters[self._tlb_misses_key] += 1
            yield self.config.tlb.miss_cycles

        block = addr & self._block_mask
        while True:
            if shared and (addr & self._page_mask) not in self._pt_entries:
                yield from self._handle_page_fault(addr, is_write)
                continue
            if shared:
                # Inserted check code (Blizzard-S/E): loads may ride the
                # ECC trick; stores pay the lookup.
                check = (self.costs.check_write_cycles if is_write
                         else self.costs.check_read_cycles)
                if check:
                    yield check
            if self.cache.access(block, is_write):
                yield self._hit_cycles
                return self._complete(addr, is_write, value, start)
            if shared:
                fault = self.tags.check(addr, is_write)
                if fault is not None:
                    # Typhoon-shaped fault handling: suspend, hand the
                    # descriptor to the handler processor, retry when its
                    # handler resumes us.  The handler runs concurrently
                    # with whatever other work this CPU cannot do while
                    # suspended — but other nodes' CPUs keep computing.
                    counters[self._block_faults_key] += 1
                    suspension = self.thread.suspend()
                    self.hp.enqueue_fault(fault)
                    yield suspension
                    continue  # retry the whole access
            yield self.config.local_miss_cycles
            counters[self._local_misses_key] += 1
            if shared and self.tags.check(addr, is_write) is not None:
                # The handler processor invalidated (or downgraded) the
                # block while our fill was in flight: relinquish and
                # retry rather than installing a stale line.
                counters[self._fills_killed_key] += 1
                continue
            if shared and self.tags.read_tag(addr) is Tag.READ_ONLY:
                state = LineState.SHARED
            else:
                state = LineState.EXCLUSIVE
            self.cache.insert(block, state)
            return self._complete(addr, is_write, value, start)

    def __repr__(self) -> str:
        return f"DecoupledNode({self.node_id})"
