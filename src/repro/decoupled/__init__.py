"""The decoupled software-handler backend (paper Section 7's middle point).

Blizzard's software access control with Typhoon's handler concurrency:
each node pairs a compute CPU (inserted tag checks, no inserted polls)
with a second CPU running a software dispatch loop that polls an inbox
and executes protocol handlers concurrently with computation — the
dual-processor direction the paper points at, later realized as
Typhoon-0/Typhoon-1.
"""

from repro.decoupled.node import DecoupledNode, HandlerProcessor
from repro.decoupled.system import DecoupledMachine

__all__ = ["DecoupledMachine", "DecoupledNode", "HandlerProcessor"]
