"""Dense hit-probe mirrors for the vectorised reference engine.

The batched access lanes (``AppContext.read_run``/``write_run``) need to
answer "would this reference hit?" for long runs of addresses without
walking the TLB/page-table/cache object graph once per element.  The
:class:`AccessMirror` keeps a dense, per-page summary of exactly the
state those probes consult:

* ``page_flags[page_number]`` — an int with :data:`TLB_PRESENT` set while
  the page number is resident in the CPU TLB and :data:`PAGE_MAPPED` set
  while the page is mapped in the node's page table;
* ``block_flags[page_number]`` — a ``bytearray`` with one byte per block
  in the page: :data:`READ_HIT` while the block is cache-resident (any
  state) and additionally :data:`WRITE_HIT` while it is resident
  EXCLUSIVE (a write would hit without an upgrade).

The mirror is *derived* state: the owning structures call the hook
methods from their existing mutation paths (TLB install/evict/flush,
page map/unmap, cache insert/invalidate/downgrade/flush), all of which
are miss-path or coherence-path events — the hit path never touches the
mirror, it only reads it.  The soundness contract is one-directional: a
set bit must imply the structure would hit (the mirror may *under*-claim
— that only costs lane throughput — but must never over-claim, which
would diverge the batched schedule from the scalar one).
"""

from __future__ import annotations

from repro.memory.address import AddressLayout

#: ``page_flags`` bits.
TLB_PRESENT = 0x1
PAGE_MAPPED = 0x2

#: ``block_flags`` bits.  READ_HIT is set for any resident line;
#: WRITE_HIT additionally requires the line to be EXCLUSIVE.
READ_HIT = 0x1
WRITE_HIT = 0x2


class AccessMirror:
    """Per-node dense mirror of the reference hit path.

    Keyed by virtual page *number* (``addr >> page_shift``).  TLB hooks
    take page numbers (the TLB stores numbers); page-table and cache
    hooks take addresses and shift internally.
    """

    __slots__ = ("page_flags", "block_flags", "_blocks_per_page",
                 "_page_shift", "_page_low", "_block_shift")

    def __init__(self, layout: AddressLayout):
        self.page_flags: dict[int, int] = {}
        self.block_flags: dict[int, bytearray] = {}
        self._blocks_per_page = layout.blocks_per_page
        self._page_shift = layout.page_size.bit_length() - 1
        self._page_low = layout.page_size - 1
        self._block_shift = layout.block_size.bit_length() - 1

    # ------------------------------------------------------------------
    # CPU TLB hooks (page numbers)
    # ------------------------------------------------------------------
    def tlb_install(self, page_number: int) -> None:
        self.page_flags[page_number] = (
            self.page_flags.get(page_number, 0) | TLB_PRESENT
        )

    def tlb_evict(self, page_number: int) -> None:
        flags = self.page_flags.get(page_number)
        if flags:
            self.page_flags[page_number] = flags & ~TLB_PRESENT

    def tlb_flush(self) -> None:
        page_flags = self.page_flags
        for page_number, flags in page_flags.items():
            page_flags[page_number] = flags & ~TLB_PRESENT

    # ------------------------------------------------------------------
    # Page-table hooks (any address within the page)
    # ------------------------------------------------------------------
    def page_map(self, page_addr: int) -> None:
        page_number = page_addr >> self._page_shift
        self.page_flags[page_number] = (
            self.page_flags.get(page_number, 0) | PAGE_MAPPED
        )

    def page_unmap(self, page_addr: int) -> None:
        page_number = page_addr >> self._page_shift
        flags = self.page_flags.get(page_number)
        if flags:
            self.page_flags[page_number] = flags & ~PAGE_MAPPED

    # ------------------------------------------------------------------
    # Cache hooks (block addresses)
    # ------------------------------------------------------------------
    def cache_set(self, block_addr: int, exclusive: bool) -> None:
        page_number = block_addr >> self._page_shift
        blocks = self.block_flags.get(page_number)
        if blocks is None:
            blocks = self.block_flags[page_number] = bytearray(
                self._blocks_per_page
            )
        blocks[(block_addr & self._page_low) >> self._block_shift] = (
            READ_HIT | WRITE_HIT if exclusive else READ_HIT
        )

    def cache_clear(self, block_addr: int) -> None:
        blocks = self.block_flags.get(block_addr >> self._page_shift)
        if blocks is not None:
            blocks[(block_addr & self._page_low) >> self._block_shift] = 0

    def cache_flush(self) -> None:
        self.block_flags.clear()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        resident = sum(
            1 for blocks in self.block_flags.values() for b in blocks if b
        )
        return (
            f"AccessMirror(pages={len(self.page_flags)}, "
            f"resident_blocks={resident})"
        )
