"""Node memory-system substrate.

Everything under this package is a *mechanism* used by both target systems:
set-associative caches and TLBs (Table 2 geometry), the fine-grain access
tags and the nine operations of Table 1, per-node page tables for
user-level virtual-memory management, and the shared-segment allocator that
implements Stache's "distributed mapping table" of page homes.
"""

from repro.memory.address import AddressLayout, AddressSpaceError
from repro.memory.allocator import GlobalHeap, SharedRegion
from repro.memory.cache import Cache, CacheLine, LineState
from repro.memory.data import MemoryImage
from repro.memory.page_table import PageEntry, PageTable, PageTableError
from repro.memory.tags import AccessFault, Tag, TagStore
from repro.memory.tlb import Tlb

__all__ = [
    "AccessFault",
    "AddressLayout",
    "AddressSpaceError",
    "Cache",
    "CacheLine",
    "GlobalHeap",
    "LineState",
    "MemoryImage",
    "PageEntry",
    "PageTable",
    "PageTableError",
    "SharedRegion",
    "Tag",
    "TagStore",
    "Tlb",
]
