"""Fine-grain access control: tagged memory blocks (paper Section 2.4).

Every aligned memory block carries an access tag:

* ``READ_WRITE`` — loads and stores complete normally;
* ``READ_ONLY``  — loads complete, stores fault;
* ``INVALID``    — loads and stores fault;
* ``BUSY``       — same access semantics as INVALID, but distinguishable
  by higher-level software (Typhoon's RTLB encodes it; protocols use it to
  mark blocks with a fetch in flight, e.g. prefetched blocks).

The nine Table 1 operations are implemented across two layers: this module
provides the tag array and the checked/unchecked access primitives; thread
suspension and handler dispatch (``read``/``write`` faulting and
``resume``) live in :mod:`repro.tempest.access` and
:mod:`repro.typhoon.np`, which own the threads and the hardware.

Tags exist only for pages registered with the store (the shared segment);
private memory is untagged and always accessible.

Internally each page's tags live in a dense ``bytearray`` of small
integer codes (the RTLB's two-bits-per-block array, widened to a byte),
so the per-reference :meth:`TagStore.check` is two indexed loads and an
integer compare; the :class:`Tag` enum appears only at the API boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.address import AddressLayout


class Tag(enum.Enum):
    READ_WRITE = "ReadWrite"
    READ_ONLY = "ReadOnly"
    INVALID = "Invalid"
    BUSY = "Busy"

    def permits(self, is_write: bool) -> bool:
        if self is Tag.READ_WRITE:
            return True
        if self is Tag.READ_ONLY:
            return not is_write
        return False


#: Dense tag encoding: READ_WRITE=0 and READ_ONLY=1 so the permission
#: check is a compare against the access type (see :meth:`TagStore.check`).
TAG_READ_WRITE = 0
TAG_READ_ONLY = 1
TAG_INVALID = 2
TAG_BUSY = 3

_TAG_CODE = {
    Tag.READ_WRITE: TAG_READ_WRITE,
    Tag.READ_ONLY: TAG_READ_ONLY,
    Tag.INVALID: TAG_INVALID,
    Tag.BUSY: TAG_BUSY,
}
_CODE_TAG = (Tag.READ_WRITE, Tag.READ_ONLY, Tag.INVALID, Tag.BUSY)


@dataclass(frozen=True)
class AccessFault:
    """A block access fault: the information Typhoon's BAF buffer captures."""

    addr: int
    block_addr: int
    is_write: bool
    tag: Tag
    node: int

    @property
    def kind(self) -> str:
        access = "write" if self.is_write else "read"
        return f"{access}-{self.tag.value}"


class TagStoreError(RuntimeError):
    """Structural misuse: tagging unregistered pages, etc."""


class TagStore:
    """Per-node array of block access tags, organized by page."""

    def __init__(self, layout: AddressLayout, node: int = 0):
        self.layout = layout
        self.node = node
        #: Conformance hook: called ``observer(node, addr, old, new)`` on
        #: every :meth:`set_tag` (page registration resets bypass it).
        self.observer = None
        # page base address -> bytearray of tag codes, one per block.
        self._pages: dict[int, bytearray] = {}
        # Precomputed address arithmetic for the per-access tag check.
        self._page_mask = ~(layout.page_size - 1)
        self._page_low = layout.page_size - 1
        self._block_shift = layout.block_size.bit_length() - 1

    # ------------------------------------------------------------------
    # Page registration (called by the page table on map/unmap)
    # ------------------------------------------------------------------
    def register_page(self, page_addr: int, initial: Tag) -> None:
        page_addr = self.layout.page_of(page_addr)
        if page_addr in self._pages:
            raise TagStoreError(f"page {page_addr:#x} already registered")
        self._pages[page_addr] = bytearray(
            [_TAG_CODE[initial]] * self.layout.blocks_per_page
        )

    def drop_page(self, page_addr: int) -> None:
        page_addr = self.layout.page_of(page_addr)
        if page_addr not in self._pages:
            raise TagStoreError(f"page {page_addr:#x} not registered")
        del self._pages[page_addr]

    def has_page(self, page_addr: int) -> bool:
        return self.layout.page_of(page_addr) in self._pages

    # ------------------------------------------------------------------
    # Checked accesses (Table 1: read, write)
    # ------------------------------------------------------------------
    def check(self, addr: int, is_write: bool) -> AccessFault | None:
        """Tag-check an access; returns a fault record or None if permitted."""
        tags = self._pages.get(addr & self._page_mask)
        if tags is None:
            raise TagStoreError(
                f"no tags for unmapped page {addr & self._page_mask:#x}"
            )
        # Permitted iff code 0 (RW), or code 1 (RO) on a read: the code
        # just has to stay at or below 1 - is_write.
        code = tags[(addr & self._page_low) >> self._block_shift]
        if code == 0 or (code == 1 and not is_write):
            return None
        return AccessFault(
            addr=addr,
            block_addr=self.layout.block_of(addr),
            is_write=is_write,
            tag=_CODE_TAG[code],
            node=self.node,
        )

    # ------------------------------------------------------------------
    # Tag manipulation (Table 1: read-tag, set-RW, set-RO, invalidate)
    # ------------------------------------------------------------------
    def read_tag(self, addr: int) -> Tag:
        tags = self._pages.get(addr & self._page_mask)
        if tags is None:
            raise TagStoreError(
                f"no tags for unmapped page {addr & self._page_mask:#x}"
            )
        return _CODE_TAG[tags[(addr & self._page_low) >> self._block_shift]]

    def set_tag(self, addr: int, tag: Tag) -> None:
        tags = self._pages.get(addr & self._page_mask)
        if tags is None:
            raise TagStoreError(
                f"no tags for unmapped page {addr & self._page_mask:#x}"
            )
        index = (addr & self._page_low) >> self._block_shift
        observer = self.observer
        if observer is not None:
            observer(self.node, addr, _CODE_TAG[tags[index]], tag)
        tags[index] = _TAG_CODE[tag]

    def set_rw(self, addr: int) -> None:
        self.set_tag(addr, Tag.READ_WRITE)

    def set_ro(self, addr: int) -> None:
        self.set_tag(addr, Tag.READ_ONLY)

    def invalidate(self, addr: int) -> None:
        """Set INVALID.  Invalidating local hardware-cache copies is the
        caller's job (the NP issues the MBus invalidate; see
        :meth:`repro.typhoon.np.NetworkProcessor.op_invalidate`)."""
        self.set_tag(addr, Tag.INVALID)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def page_tags(self, page_addr: int) -> list[Tag]:
        page_addr = self.layout.page_of(page_addr)
        tags = self._pages.get(page_addr)
        if tags is None:
            raise TagStoreError(f"no tags for unmapped page {page_addr:#x}")
        return [_CODE_TAG[code] for code in tags]

    def counts(self) -> dict[Tag, int]:
        result = {tag: 0 for tag in Tag}
        for tags in self._pages.values():
            for code in tags:
                result[_CODE_TAG[code]] += 1
        return result

    def __repr__(self) -> str:
        return f"TagStore(node={self.node}, pages={len(self._pages)})"
