"""Set-associative cache model (tags and states only, no data array).

The CPU hardware cache of Table 2: 4-way set-associative with random
replacement and 32-byte blocks.  The model tracks which blocks are present
and in what state; the data itself lives in the per-node memory image (see
:mod:`repro.typhoon.node`), because the simulator only needs data values to
*verify* coherence, not to hit in the right level.

States model an ownership-based coherent bus (MBus-like):

* ``SHARED`` — clean, possibly other caches hold it, read hits only;
* ``EXCLUSIVE`` — owned, dirty-able, read and write hits;
* lines are simply absent when invalid.

Replacement victim selection is deterministic given the machine seed
(random replacement per Table 2, drawn from a named RNG stream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random

from repro.sim.config import CacheConfig


class LineState(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class CacheLine:
    """One resident block."""

    block_addr: int
    state: LineState
    fifo_order: int = 0


class Cache:
    """Tag/state array for one set-associative cache."""

    def __init__(self, config: CacheConfig, rng: Random, name: str = "cache"):
        config.validate()
        self.config = config
        self.name = name
        self._rng = rng
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)
        ]
        self._set_mask = config.num_sets - 1
        self._block_shift = config.block_size.bit_length() - 1
        self._insert_counter = 0
        #: Optional :class:`repro.memory.mirror.AccessMirror`; every
        #: residency/state change below keeps its block bits coherent.
        self.mirror = None
        # Counters maintained locally; the node model publishes them.
        self.hits = 0
        self.misses = 0
        self.upgrades = 0
        self.replacements = 0

    # ------------------------------------------------------------------
    def _set_index(self, block_addr: int) -> int:
        return (block_addr >> self._block_shift) & self._set_mask

    def _set_for(self, block_addr: int) -> dict[int, CacheLine]:
        return self._sets[self._set_index(block_addr)]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, block_addr: int) -> CacheLine | None:
        """Return the resident line for ``block_addr`` or None."""
        # _set_for inlined: this runs once or twice per CPU reference.
        return self._sets[
            (block_addr >> self._block_shift) & self._set_mask
        ].get(block_addr)

    def access(self, block_addr: int, is_write: bool) -> bool:
        """Probe for a hit; maintains hit/miss/upgrade counters.

        Returns True on a hit that needs no coherence action.  A write to
        a SHARED line is a miss (an upgrade): the caller must obtain
        ownership through the protocol.
        """
        line = self.lookup(block_addr)
        if line is None:
            self.misses += 1
            return False
        if is_write and line.state is LineState.SHARED:
            self.upgrades += 1
            self.misses += 1
            return False
        self.hits += 1
        return True

    def contains(self, block_addr: int) -> bool:
        return self.lookup(block_addr) is not None

    # ------------------------------------------------------------------
    # Fill / invalidate
    # ------------------------------------------------------------------
    def insert(self, block_addr: int, state: LineState) -> CacheLine | None:
        """Install a block; returns the victim line if one was evicted.

        If the block is already resident its state is updated in place
        (e.g. SHARED -> EXCLUSIVE on an upgrade fill) and no victim is
        produced.
        """
        cache_set = self._set_for(block_addr)
        mirror = self.mirror
        existing = cache_set.get(block_addr)
        if existing is not None:
            existing.state = state
            if mirror is not None:
                mirror.cache_set(block_addr, state is LineState.EXCLUSIVE)
            return None
        victim = None
        if len(cache_set) >= self.config.associativity:
            victim = self._choose_victim(cache_set)
            del cache_set[victim.block_addr]
            self.replacements += 1
            if mirror is not None:
                mirror.cache_clear(victim.block_addr)
        self._insert_counter += 1
        cache_set[block_addr] = CacheLine(
            block_addr, state, fifo_order=self._insert_counter
        )
        if mirror is not None:
            mirror.cache_set(block_addr, state is LineState.EXCLUSIVE)
        return victim

    def _choose_victim(self, cache_set: dict[int, CacheLine]) -> CacheLine:
        lines = list(cache_set.values())
        policy = self.config.replacement
        if policy == "random":
            return self._rng.choice(lines)
        if policy == "fifo":
            return min(lines, key=lambda line: line.fifo_order)
        # "lru" degenerates to fifo-order here because access recency is
        # not tracked; Table 2's CPU cache is random anyway.
        return min(lines, key=lambda line: line.fifo_order)

    def invalidate(self, block_addr: int) -> CacheLine | None:
        """Drop a block (coherence invalidation); returns the line if present."""
        cache_set = self._set_for(block_addr)
        line = cache_set.pop(block_addr, None)
        if line is not None and self.mirror is not None:
            self.mirror.cache_clear(block_addr)
        return line

    def downgrade(self, block_addr: int) -> bool:
        """EXCLUSIVE -> SHARED (remote read of an owned block)."""
        line = self.lookup(block_addr)
        if line is None:
            return False
        line.state = LineState.SHARED
        if self.mirror is not None:
            self.mirror.cache_set(block_addr, False)
        return True

    # ------------------------------------------------------------------
    def resident_blocks(self) -> list[int]:
        """All resident block addresses (diagnostics and invariant checks)."""
        blocks: list[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.keys())
        return blocks

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        if self.mirror is not None:
            self.mirror.cache_flush()

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.config.size_bytes}B, "
            f"{len(self)} resident)"
        )
