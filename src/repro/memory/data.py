"""Per-node memory images: the actual data values.

The simulator is not organized around a byte array; applications read and
write Python values at word-aligned virtual addresses.  Each node holds a
:class:`MemoryImage` representing the contents of its local physical
memory (for pages it has mapped).  Coherence-protocol block transfers copy
the word values of one 32-byte block between images, which is exactly what
lets the test suite verify *data* coherence (a read observes the value of
the most recent write under the protocol's ordering), not just state-
machine plausibility.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.memory.address import AddressLayout


class MemoryImage:
    """Word-granularity data storage for one node's mapped pages.

    Words are stored per block (block base -> {offset: value}) so that a
    coherence block transfer — the hot operation — is a single dict copy
    rather than a probe of every address in the block.
    """

    def __init__(self, layout: AddressLayout, node: int = 0):
        self.layout = layout
        self.node = node
        self._blocks: dict[int, dict[int, Any]] = {}
        self._block_mask = ~(layout.block_size - 1)
        self._block_low = layout.block_size - 1

    def read(self, addr: int, default: Any = 0) -> Any:
        block = self._blocks.get(addr & self._block_mask)
        if block is None:
            return default
        return block.get(addr & self._block_low, default)

    def write(self, addr: int, value: Any) -> None:
        base = addr & self._block_mask
        block = self._blocks.get(base)
        if block is None:
            block = self._blocks[base] = {}
        block[addr & self._block_low] = value

    # ------------------------------------------------------------------
    # Block transfer support
    # ------------------------------------------------------------------
    def export_block(self, block_addr: int) -> dict[int, Any]:
        """Snapshot the words of one block (offset -> value), sparsely."""
        block = self._blocks.get(block_addr & self._block_mask)
        return dict(block) if block else {}

    def import_block(self, block_addr: int, payload: dict[int, Any]) -> None:
        """Overwrite one block's words from a snapshot.

        Words absent from the payload are cleared: after a block copy the
        destination must equal the source exactly, or stale values could
        masquerade as coherent data.
        """
        base = block_addr & self._block_mask
        if payload:
            self._blocks[base] = dict(payload)
        else:
            self._blocks.pop(base, None)

    def clear_page(self, page_addr: int) -> None:
        base = self.layout.page_of(page_addr)
        end = base + self.layout.page_size
        for block_base in [b for b in self._blocks if base <= b < end]:
            del self._blocks[block_base]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(block) for block in self._blocks.values())

    def items(self) -> Iterator[tuple[int, Any]]:
        for base, block in self._blocks.items():
            for offset, value in block.items():
                yield base + offset, value

    def __repr__(self) -> str:
        return f"MemoryImage(node={self.node}, words={len(self)})"
