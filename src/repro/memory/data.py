"""Per-node memory images: the actual data values.

The simulator is not organized around a byte array; applications read and
write Python values at word-aligned virtual addresses.  Each node holds a
:class:`MemoryImage` representing the contents of its local physical
memory (for pages it has mapped).  Coherence-protocol block transfers copy
the word values of one 32-byte block between images, which is exactly what
lets the test suite verify *data* coherence (a read observes the value of
the most recent write under the protocol's ordering), not just state-
machine plausibility.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.memory.address import AddressLayout


class MemoryImage:
    """Word-granularity data storage for one node's mapped pages."""

    def __init__(self, layout: AddressLayout, node: int = 0):
        self.layout = layout
        self.node = node
        self._words: dict[int, Any] = {}

    def read(self, addr: int, default: Any = 0) -> Any:
        return self._words.get(addr, default)

    def write(self, addr: int, value: Any) -> None:
        self._words[addr] = value

    # ------------------------------------------------------------------
    # Block transfer support
    # ------------------------------------------------------------------
    def export_block(self, block_addr: int) -> dict[int, Any]:
        """Snapshot the words of one block (offset -> value), sparsely."""
        base = self.layout.block_of(block_addr)
        end = base + self.layout.block_size
        return {
            addr - base: value
            for addr, value in self._words.items()
            if base <= addr < end
        }

    def import_block(self, block_addr: int, payload: dict[int, Any]) -> None:
        """Overwrite one block's words from a snapshot.

        Words absent from the payload are cleared: after a block copy the
        destination must equal the source exactly, or stale values could
        masquerade as coherent data.
        """
        base = self.layout.block_of(block_addr)
        for offset in range(0, self.layout.block_size):
            addr = base + offset
            if offset in payload:
                self._words[addr] = payload[offset]
            elif addr in self._words:
                del self._words[addr]

    def clear_page(self, page_addr: int) -> None:
        base = self.layout.page_of(page_addr)
        end = base + self.layout.page_size
        for addr in [a for a in self._words if base <= a < end]:
            del self._words[addr]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._words)

    def items(self) -> Iterator[tuple[int, Any]]:
        return iter(self._words.items())

    def __repr__(self) -> str:
        return f"MemoryImage(node={self.node}, words={len(self._words)})"
