"""Address arithmetic and the shared address-space layout.

The paper's memory model (Section 2.3) is a conventional flat, paged
address space per node, with a large user-reserved *shared heap segment*
whose semantics are supplied by user-level code.  We fix the layout:

* addresses below ``SHARED_BASE`` are node-private (text, stack, private
  heap) — accesses to them never involve the coherence machinery;
* addresses at or above ``SHARED_BASE`` belong to the shared segment.

All quantities are byte addresses.  Blocks are the fine-grain access
control unit (32 bytes by default, Table 2); pages are the virtual-memory
unit (4 KB).
"""

from __future__ import annotations

from dataclasses import dataclass


class AddressSpaceError(ValueError):
    """Raised for malformed addresses or misaligned regions."""


#: Start of the user-reserved shared heap segment.
SHARED_BASE = 0x1000_0000


@dataclass(frozen=True)
class AddressLayout:
    """Block/page arithmetic for one machine configuration."""

    block_size: int = 32
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.block_size & (self.block_size - 1):
            raise AddressSpaceError("block size must be a power of two")
        if self.page_size & (self.page_size - 1):
            raise AddressSpaceError("page size must be a power of two")
        if self.page_size % self.block_size:
            raise AddressSpaceError("page size must be a multiple of block size")

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        """Block-aligned base address containing ``addr``."""
        return addr & ~(self.block_size - 1)

    def block_offset(self, addr: int) -> int:
        return addr & (self.block_size - 1)

    def block_index_in_page(self, addr: int) -> int:
        """Index of the block within its page (0 .. blocks_per_page - 1)."""
        return (addr & (self.page_size - 1)) >> self.block_size.bit_length() - 1

    # ------------------------------------------------------------------
    # Pages
    # ------------------------------------------------------------------
    def page_of(self, addr: int) -> int:
        """Page-aligned base address containing ``addr``."""
        return addr & ~(self.page_size - 1)

    def page_offset(self, addr: int) -> int:
        return addr & (self.page_size - 1)

    def page_number(self, addr: int) -> int:
        return addr >> (self.page_size.bit_length() - 1)

    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def blocks_in_page(self, page_addr: int):
        """Iterate block base addresses of the page at ``page_addr``."""
        base = self.page_of(page_addr)
        for index in range(self.blocks_per_page):
            yield base + index * self.block_size

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    @staticmethod
    def is_shared(addr: int) -> bool:
        return addr >= SHARED_BASE

    def validate(self, addr: int) -> None:
        if addr < 0:
            raise AddressSpaceError(f"negative address {addr:#x}")
