"""Shared-segment allocation and the distributed page-home table.

Stache (Section 3) associates each shared virtual page with a *home node*
through "a distributed mapping table"; by default pages are assigned
round-robin (IVY's fixed distributed manager algorithm, Section 7), but
the allocator also lets a caller place pages on specific nodes, which both
the applications (owners-compute data placement) and the EM3D custom
protocol rely on.

:class:`GlobalHeap` is a bump allocator over the shared segment.  It is a
*logical* structure shared by the runtime on every node — the simulated
equivalent of each node computing the same deterministic allocation during
a parallel program's (replicated) initialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import SHARED_BASE, AddressLayout, AddressSpaceError


@dataclass(frozen=True)
class SharedRegion:
    """A contiguous shared allocation."""

    base: int
    size: int
    home: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.end


class GlobalHeap:
    """Page-granular allocator for the shared heap segment."""

    def __init__(self, layout: AddressLayout, nodes: int):
        if nodes < 1:
            raise AddressSpaceError("need at least one node")
        self.layout = layout
        self.nodes = nodes
        self._next_addr = SHARED_BASE
        self._next_home = 0
        self._page_home: dict[int, int] = {}
        self._regions: list[SharedRegion] = []

    # ------------------------------------------------------------------
    def allocate(self, size: int, home: int | None = None, label: str = "") -> SharedRegion:
        """Allocate ``size`` bytes of shared memory, page aligned.

        ``home=None`` assigns each allocated page round-robin across
        nodes; an explicit ``home`` places every page of the region there.
        """
        if size <= 0:
            raise AddressSpaceError(f"allocation size must be positive, got {size}")
        if home is not None and not 0 <= home < self.nodes:
            raise AddressSpaceError(f"home node {home} out of range")
        pages = -(-size // self.layout.page_size)  # ceiling division
        base = self._next_addr
        self._next_addr += pages * self.layout.page_size
        for index in range(pages):
            page_addr = base + index * self.layout.page_size
            if home is None:
                page_home = self._next_home
                self._next_home = (self._next_home + 1) % self.nodes
            else:
                page_home = home
            self._page_home[page_addr] = page_home
        region = SharedRegion(base=base, size=pages * self.layout.page_size,
                              home=home if home is not None else -1, label=label)
        self._regions.append(region)
        return region

    def allocate_striped(self, size_per_node: int, label: str = "") -> list[SharedRegion]:
        """One region per node, each homed on its node (owners-compute layout)."""
        return [
            self.allocate(size_per_node, home=node, label=f"{label}[{node}]")
            for node in range(self.nodes)
        ]

    # ------------------------------------------------------------------
    def home_of(self, addr: int) -> int:
        """The distributed mapping table: home node of an address's page."""
        page_addr = self.layout.page_of(addr)
        home = self._page_home.get(page_addr)
        if home is None:
            raise AddressSpaceError(f"address {addr:#x} is not allocated")
        return home

    def rehome(self, addr: int, new_home: int) -> None:
        """Move a page's entry in the distributed mapping table.

        Used by explicit page migration; the page must already be
        allocated.
        """
        page_addr = self.layout.page_of(addr)
        if page_addr not in self._page_home:
            raise AddressSpaceError(f"page {page_addr:#x} is not allocated")
        if not 0 <= new_home < self.nodes:
            raise AddressSpaceError(f"home node {new_home} out of range")
        self._page_home[page_addr] = new_home

    def is_allocated(self, addr: int) -> bool:
        return self.layout.page_of(addr) in self._page_home

    def pages_homed_on(self, node: int) -> list[int]:
        return sorted(
            page for page, home in self._page_home.items() if home == node
        )

    @property
    def regions(self) -> list[SharedRegion]:
        return list(self._regions)

    @property
    def bytes_allocated(self) -> int:
        return self._next_addr - SHARED_BASE

    def __repr__(self) -> str:
        return (
            f"GlobalHeap(nodes={self.nodes}, "
            f"allocated={self.bytes_allocated} bytes)"
        )
