"""Per-node page tables and user-level virtual-memory management.

Tempest (Section 2.3) lets user-level code allocate physical pages at
specified virtual addresses in the shared segment, remap or unmap them,
and handle faults on unmapped pages.  This module is the mechanism; the
user-visible calls are in :mod:`repro.tempest.vmm`.

A page entry records:

* ``mode`` — a small integer the protocol uses to select fault handlers
  (Typhoon's RTLB "page mode", Section 5.4); Stache uses HOME and STACHE,
  the EM3D protocol adds custom modes;
* ``home`` — the owning node's id (part of the RTLB's uninterpreted
  per-page state in hardware; kept explicit here);
* ``user_word`` — an uninterpreted user pointer (Stache home pages point
  it at their per-block directory vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.memory.address import AddressLayout
from repro.memory.tags import Tag, TagStore


class PageTableError(RuntimeError):
    """Mapping misuse: double map, unmap of absent page, etc."""


@dataclass
class PageEntry:
    """One mapped virtual page on one node."""

    vpage: int
    mode: int
    home: int
    user_word: Any = None
    writable: bool = True
    fifo_order: int = field(default=0, compare=False)


class PageTable:
    """Virtual page mappings for one node, tied to that node's tag store."""

    def __init__(self, layout: AddressLayout, tags: TagStore, node: int = 0):
        self.layout = layout
        self.tags = tags
        self.node = node
        self._entries: dict[int, PageEntry] = {}
        self._map_counter = 0
        #: Optional :class:`repro.memory.mirror.AccessMirror`; map/unmap
        #: keep its page-mapped bit coherent.
        self.mirror = None
        self.maps = 0
        self.unmaps = 0

    # ------------------------------------------------------------------
    def map_page(
        self,
        vaddr: int,
        mode: int,
        home: int,
        initial_tag: Tag,
        user_word: Any = None,
        writable: bool = True,
    ) -> PageEntry:
        """Allocate-and-map a physical page at ``vaddr`` (page aligned)."""
        vpage = self.layout.page_of(vaddr)
        if vpage in self._entries:
            raise PageTableError(f"page {vpage:#x} already mapped on node {self.node}")
        self._map_counter += 1
        entry = PageEntry(
            vpage=vpage,
            mode=mode,
            home=home,
            user_word=user_word,
            writable=writable,
            fifo_order=self._map_counter,
        )
        self._entries[vpage] = entry
        self.tags.register_page(vpage, initial_tag)
        if self.mirror is not None:
            self.mirror.page_map(vpage)
        self.maps += 1
        return entry

    def unmap_page(self, vaddr: int) -> PageEntry:
        """Unmap and free the page; its tags are dropped with it."""
        vpage = self.layout.page_of(vaddr)
        entry = self._entries.pop(vpage, None)
        if entry is None:
            raise PageTableError(f"page {vpage:#x} not mapped on node {self.node}")
        self.tags.drop_page(vpage)
        if self.mirror is not None:
            self.mirror.page_unmap(vpage)
        self.unmaps += 1
        return entry

    def remap_page(self, old_vaddr: int, new_vaddr: int, initial_tag: Tag) -> PageEntry:
        """Move a physical page to a new virtual address (Stache page reuse).

        The old mapping disappears; the new one starts with fresh tags.
        """
        old_entry = self.unmap_page(old_vaddr)
        return self.map_page(
            new_vaddr,
            mode=old_entry.mode,
            home=old_entry.home,
            initial_tag=initial_tag,
            user_word=old_entry.user_word,
            writable=old_entry.writable,
        )

    # ------------------------------------------------------------------
    def lookup(self, vaddr: int) -> PageEntry | None:
        return self._entries.get(self.layout.page_of(vaddr))

    def is_mapped(self, vaddr: int) -> bool:
        return self.layout.page_of(vaddr) in self._entries

    def mapped_pages(self) -> list[PageEntry]:
        return list(self._entries.values())

    def pages_with_mode(self, mode: int) -> list[PageEntry]:
        return [entry for entry in self._entries.values() if entry.mode == mode]

    def oldest_page_with_mode(self, mode: int) -> PageEntry | None:
        """FIFO replacement candidate (Stache's policy, Section 3)."""
        candidates = self.pages_with_mode(mode)
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.fifo_order)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"PageTable(node={self.node}, pages={len(self)})"
