"""Fully-associative TLB with FIFO replacement (Table 2).

The TLB caches virtual page numbers.  A miss charges the configured
penalty (25 cycles) at the point of access; the CPU and the NP each have
one, and the NP additionally has a *reverse* TLB (see
:mod:`repro.typhoon.rtlb`) keyed by physical page.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.config import TlbConfig


class Tlb:
    """Tracks which virtual pages are currently mapped by the hardware."""

    def __init__(self, config: TlbConfig, name: str = "tlb"):
        self.config = config
        self.name = name
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_number: int) -> bool:
        """Probe for ``page_number``; a miss installs the entry (FIFO evict).

        Returns True on a hit.  FIFO means a hit does *not* refresh the
        entry's position, unlike LRU.
        """
        if page_number in self._entries:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[page_number] = None
        return False

    def evict(self, page_number: int) -> bool:
        """Shoot down one entry (page remap/unmap)."""
        return self._entries.pop(page_number, "absent") is None

    def flush(self) -> None:
        self._entries.clear()

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Tlb({self.name}, {len(self)}/{self.config.entries})"
