"""Fully-associative TLB with FIFO replacement (Table 2).

The TLB caches virtual page numbers.  A miss charges the configured
penalty (25 cycles) at the point of access; the CPU and the NP each have
one, and the NP additionally has a *reverse* TLB (see
:mod:`repro.typhoon.rtlb`) keyed by physical page.

Entries live in a plain insertion-ordered dict (the FIFO order is the
insertion order; hits never refresh position), so a probe is a single
dict membership test.  When a :class:`~repro.memory.mirror.AccessMirror`
is attached (the CPU TLB of a node with batched lanes), every install,
evict, and flush updates the mirror's TLB-present bit; the attribute is
None for the NP TLB and the RTLB.
"""

from __future__ import annotations

from repro.sim.config import TlbConfig


class Tlb:
    """Tracks which virtual pages are currently mapped by the hardware."""

    def __init__(self, config: TlbConfig, name: str = "tlb"):
        self.config = config
        self.name = name
        # Node models alias this dict (cleared in place, never reassigned).
        self._entries: dict[int, None] = {}
        #: Optional :class:`repro.memory.mirror.AccessMirror`; the node
        #: attaches one to its CPU TLB only.
        self.mirror = None
        self.hits = 0
        self.misses = 0

    def access(self, page_number: int) -> bool:
        """Probe for ``page_number``; a miss installs the entry (FIFO evict).

        Returns True on a hit.  FIFO means a hit does *not* refresh the
        entry's position, unlike LRU.
        """
        entries = self._entries
        if page_number in entries:
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.config.entries:
            oldest = next(iter(entries))
            del entries[oldest]
            if self.mirror is not None:
                self.mirror.tlb_evict(oldest)
        entries[page_number] = None
        if self.mirror is not None:
            self.mirror.tlb_install(page_number)
        return False

    def evict(self, page_number: int) -> bool:
        """Shoot down one entry (page remap/unmap)."""
        if self.mirror is not None:
            self.mirror.tlb_evict(page_number)
        return self._entries.pop(page_number, "absent") is None

    def flush(self) -> None:
        self._entries.clear()
        if self.mirror is not None:
            self.mirror.tlb_flush()

    def __contains__(self, page_number: int) -> bool:
        return page_number in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Tlb({self.name}, {len(self)}/{self.config.entries})"
