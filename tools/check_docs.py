#!/usr/bin/env python
"""Documentation checks: link integrity and executable examples.

Two passes, both run by CI's ``docs`` job and by
``tests/integration/test_docs.py``:

1. **Links** — every intra-repository markdown link in every ``*.md``
   file must resolve to an existing file or directory.  External links
   (``http``/``https``/``mailto``) and pure anchors are skipped.
2. **Doctests** — every fenced ```` ```pycon ```` block in ``docs/*.md``
   is executed with :mod:`doctest` (ELLIPSIS enabled), so the
   documentation's transcripts cannot drift from the code.

Usage::

    python tools/check_docs.py          # check everything, exit 0/1
    python tools/check_docs.py --links  # links only
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: inline markdown links: [text](target) — target captured without an
#: optional trailing title.  Reference-style links are not used in this
#: repository.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^```pycon\s*$(.*?)^```\s*$", re.M | re.S)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(root: Path = ROOT) -> list[Path]:
    """Every tracked-looking markdown file under the repository."""
    return sorted(
        path for path in root.rglob("*.md")
        if ".git" not in path.parts and ".hypothesis" not in path.parts
    )


def check_links(root: Path = ROOT) -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors = []
    for path in markdown_files(root):
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{path.relative_to(root)}:{line}: broken link "
                    f"-> {match.group(1)}")
    return errors


def pycon_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) for each ```pycon fence in ``path``."""
    text = path.read_text(encoding="utf-8")
    return [
        (text.count("\n", 0, match.start()) + 2, match.group(1))
        for match in _FENCE_RE.finditer(text)
    ]


def check_doctests(root: Path = ROOT) -> list[str]:
    """Run every docs/*.md pycon block; return one error per failure.

    All blocks within one file share a namespace, so a page can build up
    state across fences the way an interactive session would.
    """
    errors = []
    parser = doctest.DocTestParser()
    flags = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    for path in sorted((root / "docs").glob("*.md")):
        globs: dict = {}
        for line, source in pycon_blocks(path):
            name = f"{path.relative_to(root)}:{line}"
            test = parser.get_doctest(source, globs, name, str(path), line)
            runner = doctest.DocTestRunner(optionflags=flags, verbose=False)
            output: list[str] = []
            # clear_globs=False: later fences on the page continue the
            # same session, the way an interactive transcript reads.
            runner.run(test, out=output.append, clear_globs=False)
            if runner.failures:
                errors.append(f"{name}: {runner.failures} doctest "
                              f"failure(s)\n" + "".join(output))
            globs = test.globs  # carry state into the next block
    return errors


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--links", action="store_true",
                    help="check markdown links only")
    ap.add_argument("--doctests", action="store_true",
                    help="run docs/*.md pycon doctests only")
    args = ap.parse_args(argv)
    run_links = args.links or not args.doctests
    run_doctests = args.doctests or not args.links

    errors = []
    if run_links:
        errors += check_links()
    if run_doctests:
        errors += check_doctests()
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = len(markdown_files())
        print(f"docs ok: {checked} markdown files checked")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
