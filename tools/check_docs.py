#!/usr/bin/env python
"""Documentation checks: link integrity and executable examples.

Two passes, both run by CI's ``docs`` job and by
``tests/integration/test_docs.py``:

1. **Links** — every intra-repository markdown link in every ``*.md``
   file must resolve to an existing file or directory.  External links
   (``http``/``https``/``mailto``) and pure anchors are skipped.
2. **Doctests** — every fenced ```` ```pycon ```` block in ``docs/*.md``
   is executed with :mod:`doctest` (ELLIPSIS enabled), so the
   documentation's transcripts cannot drift from the code.
3. **Symbols** — every backtick-quoted dotted ``repro.…`` reference in
   ``docs/*.md`` and ``README.md`` must resolve to a real module or
   attribute under ``src/repro``, so renames cannot strand stale names
   in prose that the doctests never execute.
4. **Index** — every ``docs/*.md`` page must be reachable from the
   README's documentation index (linked from ``README.md``), so a new
   page cannot land orphaned.

Usage::

    python tools/check_docs.py          # check everything, exit 0/1
    python tools/check_docs.py --links  # links only
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: inline markdown links: [text](target) — target captured without an
#: optional trailing title.  Reference-style links are not used in this
#: repository.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^```pycon\s*$(.*?)^```\s*$", re.M | re.S)
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
#: backtick-quoted dotted references rooted at the package: `repro.x.y`
#: or `repro.x.y.Symbol`.  Prose mentions without backticks are ignored.
_SYMBOL_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
#: any fenced code block — symbol references inside fences are example
#: code, already covered by the doctest pass where it matters.
_ANY_FENCE_RE = re.compile(r"^```.*?^```\s*$", re.M | re.S)


def markdown_files(root: Path = ROOT) -> list[Path]:
    """Every tracked-looking markdown file under the repository."""
    return sorted(
        path for path in root.rglob("*.md")
        if ".git" not in path.parts and ".hypothesis" not in path.parts
    )


def check_links(root: Path = ROOT) -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors = []
    for path in markdown_files(root):
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{path.relative_to(root)}:{line}: broken link "
                    f"-> {match.group(1)}")
    return errors


def pycon_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) for each ```pycon fence in ``path``."""
    text = path.read_text(encoding="utf-8")
    return [
        (text.count("\n", 0, match.start()) + 2, match.group(1))
        for match in _FENCE_RE.finditer(text)
    ]


def _symbol_resolves(dotted: str) -> bool:
    """True if ``dotted`` names an importable module or an attribute."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        for attr in parts[cut:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def check_symbols(root: Path = ROOT) -> list[str]:
    """Return one error per stale ``repro.…`` reference in the docs."""
    errors = []
    pages = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    for path in pages:
        if not path.exists():
            continue
        text = _ANY_FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"),
                                 path.read_text(encoding="utf-8"))
        for match in _SYMBOL_RE.finditer(text):
            dotted = match.group(1)
            if not _symbol_resolves(dotted):
                line = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{path.relative_to(root)}:{line}: stale reference "
                    f"`{dotted}` does not resolve under src/repro")
    return errors


def check_index(root: Path = ROOT) -> list[str]:
    """Return one error per docs page not linked from README.md.

    The README's documentation index is the entry point readers start
    from; a ``docs/*.md`` file nothing in the README points at is
    unreachable, however correct its own links are.
    """
    readme = root / "README.md"
    docs = root / "docs"
    if not readme.exists() or not docs.is_dir():
        return []
    text = readme.read_text(encoding="utf-8")
    linked = set()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        target = target.split("#", 1)[0]
        if target:
            linked.add((readme.parent / target).resolve())
    return [
        f"docs/{path.name}: not linked from the README documentation "
        f"index"
        for path in sorted(docs.glob("*.md"))
        if path.resolve() not in linked
    ]


def check_doctests(root: Path = ROOT) -> list[str]:
    """Run every docs/*.md pycon block; return one error per failure.

    All blocks within one file share a namespace, so a page can build up
    state across fences the way an interactive session would.
    """
    errors = []
    parser = doctest.DocTestParser()
    flags = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    for path in sorted((root / "docs").glob("*.md")):
        globs: dict = {}
        for line, source in pycon_blocks(path):
            name = f"{path.relative_to(root)}:{line}"
            test = parser.get_doctest(source, globs, name, str(path), line)
            runner = doctest.DocTestRunner(optionflags=flags, verbose=False)
            output: list[str] = []
            # clear_globs=False: later fences on the page continue the
            # same session, the way an interactive transcript reads.
            runner.run(test, out=output.append, clear_globs=False)
            if runner.failures:
                errors.append(f"{name}: {runner.failures} doctest "
                              f"failure(s)\n" + "".join(output))
            globs = test.globs  # carry state into the next block
    return errors


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--links", action="store_true",
                    help="check markdown links only")
    ap.add_argument("--doctests", action="store_true",
                    help="run docs/*.md pycon doctests only")
    ap.add_argument("--symbols", action="store_true",
                    help="check `repro.…` symbol references only")
    ap.add_argument("--index", action="store_true",
                    help="check docs/*.md README-index reachability only")
    args = ap.parse_args(argv)
    some_only = args.links or args.doctests or args.symbols or args.index
    run_links = args.links or not some_only
    run_doctests = args.doctests or not some_only
    run_symbols = args.symbols or not some_only
    run_index = args.index or not some_only

    errors = []
    if run_links:
        errors += check_links()
    if run_index:
        errors += check_index()
    if run_doctests:
        errors += check_doctests()
    if run_symbols:
        errors += check_symbols()
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = len(markdown_files())
        print(f"docs ok: {checked} markdown files checked")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
