#!/usr/bin/env python
"""Performance regression gate against the committed benchmark baseline.

Compares a freshly measured ``BENCH_kernel.json`` (written by
``benchmarks/test_perf_kernel.py``) against the baseline committed at
``HEAD`` and fails on regression.  Three checks per workload/kernel
cell, in increasing strictness:

1. **Determinism** (exact, no tolerance): ``events_fired`` and
   ``simulated_cycles`` must equal the committed baseline.  These are
   properties of the simulated machine, not the host — any drift means
   the simulation's behaviour changed, and the PR must regenerate the
   baseline deliberately (re-run the benchmark and commit the new
   ``BENCH_kernel.json``) so the trajectory records it.

2. **Throughput** (tolerant): ``events_per_second`` must be at least
   ``(1 - tolerance)`` of the baseline.  Default tolerance 0.25 —
   the gate of CI's ``perf`` job — overridable with
   ``REPRO_PERF_TOLERANCE`` (e.g. ``0.5`` on very noisy hosts).

3. **Kernel ordering** (tolerant): on cells measured under both
   kernels, the compiled kernel's wall-clock speedup over interpreted
   must stay above ``REPRO_PERF_MIN_SPEEDUP`` (default 0.75, i.e. the
   compiled kernel may never be more than 25% *slower* than the
   interpreted oracle, whatever the host).

The batched-access-lane rows (the ``lanes`` payload section) get the
same determinism and throughput checks per lane cell, plus two of their
own: scalar and batched must agree exactly on ``simulated_cycles`` and
``events_fired`` (the lanes change wall-clock only), and the CPU-time
lane speedup must stay above its floor — ``REPRO_PERF_MIN_LANE_SPEEDUP``
(default 1.3) on the reference-intensity microbenchmark row, the row's
own recorded ``lane_floor`` on the application rows.

Usage::

    python tools/check_perf.py                   # fresh vs HEAD baseline
    python tools/check_perf.py --baseline B.json # explicit baseline
    python tools/check_perf.py --fresh F.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH = ROOT / "BENCH_kernel.json"


def load_baseline(path: str | None) -> dict:
    """The committed baseline: ``--baseline`` file or ``HEAD``'s copy."""
    if path is not None:
        return json.loads(Path(path).read_text())
    try:
        blob = subprocess.run(
            ["git", "show", "HEAD:BENCH_kernel.json"],
            cwd=ROOT, capture_output=True, text=True, check=True,
        ).stdout
    except subprocess.CalledProcessError:
        print("no committed BENCH_kernel.json at HEAD and no --baseline "
              "given: nothing to compare against", file=sys.stderr)
        sys.exit(1)
    return json.loads(blob)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: HEAD's committed copy)")
    parser.add_argument("--fresh", default=str(BENCH),
                        help="freshly measured JSON (default: repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_PERF_TOLERANCE", "0.25")),
                        help="allowed fractional events/s regression")
    parser.add_argument("--min-speedup", type=float,
                        default=float(os.environ.get(
                            "REPRO_PERF_MIN_SPEEDUP", "0.75")),
                        help="floor on compiled-vs-interpreted speedup")
    parser.add_argument("--min-lane-speedup", type=float,
                        default=float(os.environ.get(
                            "REPRO_PERF_MIN_LANE_SPEEDUP", "1.3")),
                        help="floor on the microbenchmark's batched-vs-"
                             "scalar lane speedup")
    args = parser.parse_args(argv)

    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        print(f"{fresh_path} not found: run "
              f"'PYTHONPATH=src python -m pytest benchmarks/"
              f"test_perf_kernel.py -q -s' first", file=sys.stderr)
        return 1
    fresh = json.loads(fresh_path.read_text())
    baseline = load_baseline(args.baseline)

    failures: list[str] = []
    if fresh.get("nodes") != baseline.get("nodes"):
        print(f"configuration mismatch: fresh nodes={fresh.get('nodes')} "
              f"baseline nodes={baseline.get('nodes')}; not comparable",
              file=sys.stderr)
        return 1

    base_cells = baseline.get("workloads", {})
    for label, fresh_row in sorted(fresh.get("workloads", {}).items()):
        base_row = base_cells.get(label)
        if base_row is None:
            print(f"{label:>16}: new workload (no baseline) -- recorded")
            continue
        for kernel, cell in sorted(fresh_row.get("kernels", {}).items()):
            base = base_row.get("kernels", {}).get(kernel)
            if base is None:
                print(f"{label:>16} [{kernel}]: new kernel column -- recorded")
                continue
            for field in ("events_fired", "simulated_cycles"):
                if cell[field] != base[field]:
                    failures.append(
                        f"{label} [{kernel}]: {field} changed "
                        f"{base[field]} -> {cell[field]} (simulated "
                        f"behaviour drifted; regenerate and commit "
                        f"BENCH_kernel.json in this PR)"
                    )
            floor = base["events_per_second"] * (1 - args.tolerance)
            ok = cell["events_per_second"] >= floor
            print(f"{label:>16} [{kernel:>11}]: "
                  f"{cell['events_per_second']:>10,.0f} events/s vs "
                  f"baseline {base['events_per_second']:>10,.0f} "
                  f"(floor {floor:,.0f}) {'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{label} [{kernel}]: events/s regressed more than "
                    f"{args.tolerance:.0%}: {cell['events_per_second']:,.0f}"
                    f" < {floor:,.0f}"
                )
        speedup = fresh_row.get("speedup")
        if speedup is not None and speedup < args.min_speedup:
            failures.append(
                f"{label}: compiled kernel speedup {speedup:.2f}x fell "
                f"below the {args.min_speedup:.2f}x floor"
            )

    base_lanes = baseline.get("lanes", {})
    for label, fresh_row in sorted(fresh.get("lanes", {}).items()):
        base_row = base_lanes.get(label)
        cells = fresh_row.get("lanes", {})
        # The lane axis is wall-clock only: both lane modes must agree
        # exactly on the simulated outcome, baseline or not.
        for field in ("simulated_cycles", "events_fired"):
            values = {mode: cell[field] for mode, cell in cells.items()}
            if len(set(values.values())) > 1:
                failures.append(
                    f"{label}: scalar and batched lanes disagree on "
                    f"{field}: {values} (the lanes must not change "
                    f"simulated behaviour)"
                )
        for mode, cell in sorted(cells.items()):
            base = (base_row or {}).get("lanes", {}).get(mode)
            if base is None:
                print(f"{label:>16} [{mode}]: new lane cell -- recorded")
                continue
            for field in ("events_fired", "simulated_cycles"):
                if cell[field] != base[field]:
                    failures.append(
                        f"{label} [{mode}]: {field} changed "
                        f"{base[field]} -> {cell[field]} (simulated "
                        f"behaviour drifted; regenerate and commit "
                        f"BENCH_kernel.json in this PR)"
                    )
            floor = base["events_per_second"] * (1 - args.tolerance)
            ok = cell["events_per_second"] >= floor
            print(f"{label:>16} [{mode:>11}]: "
                  f"{cell['events_per_second']:>10,.0f} events/s vs "
                  f"baseline {base['events_per_second']:>10,.0f} "
                  f"(floor {floor:,.0f}) {'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{label} [{mode}]: events/s regressed more than "
                    f"{args.tolerance:.0%}: {cell['events_per_second']:,.0f}"
                    f" < {floor:,.0f}"
                )
        lane_speedup = fresh_row.get("lane_speedup")
        if fresh_row.get("microbenchmark"):
            lane_floor = args.min_lane_speedup
        else:
            lane_floor = fresh_row.get("lane_floor")
        if lane_speedup is not None and lane_floor is not None:
            ok = lane_speedup >= lane_floor
            print(f"{label:>16} [lane spdup ]: {lane_speedup:.2f}x "
                  f"(floor {lane_floor:.2f}x) {'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{label}: batched-vs-scalar lane speedup "
                    f"{lane_speedup:.2f}x fell below the "
                    f"{lane_floor:.2f}x floor"
                )

    if failures:
        print(f"\n{len(failures)} performance check(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall performance checks passed "
          f"(tolerance {args.tolerance:.0%}, "
          f"min speedup {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
