#!/usr/bin/env python3
"""User-level synchronization built from Tempest messages.

The paper's footnote 1 mentions adding synchronization primitives to
Tempest.  This example shows that a user can already build them today
from the four base mechanisms: a queueing lock and a fetch-and-add
counter, each homed on a node and manipulated by active messages whose
handlers run atomically on the home NP.

Eight nodes contend for a lock-protected shared counter and also take
tickets from a fetch-and-add cell; the output shows mutual exclusion held
and every increment survived.

Run:  python examples/custom_sync.py
"""

from repro.sim.config import MachineConfig
from repro.tempest.sync import FetchAndOp, TempestLock
from repro.typhoon.system import TyphoonMachine


def main() -> None:
    nodes = 8
    increments = 5
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=7))
    lock = TempestLock(machine.tempests, home=0, name="counter_lock")
    tickets = FetchAndOp(machine.tempests, home=1, name="tickets")

    shared_counter = [0]
    in_section = [0]
    max_in_section = [0]
    my_tickets: dict[int, list[int]] = {n: [] for n in range(nodes)}

    def worker(node_id):
        for _round in range(increments):
            # Lock-protected critical section.
            yield from lock.acquire(node_id)
            in_section[0] += 1
            max_in_section[0] = max(max_in_section[0], in_section[0])
            value = shared_counter[0]
            yield 25  # simulated critical-section work
            shared_counter[0] = value + 1
            in_section[0] -= 1
            yield from lock.release(node_id)
            # Wait-free ticket from the fetch-and-add cell.
            ticket = yield from tickets.apply(node_id, 1)
            my_tickets[node_id].append(ticket)

    machine.run_workers(worker)

    total = nodes * increments
    all_tickets = sorted(t for ts in my_tickets.values() for t in ts)
    print(f"{nodes} nodes x {increments} rounds on a {increments}-deep "
          "lock + fetch-and-add")
    print(f"  shared counter            : {shared_counter[0]} "
          f"(expected {total})")
    print(f"  max threads in section    : {max_in_section[0]} (must be 1)")
    print(f"  tickets issued            : {all_tickets == list(range(total))}"
          " (unique, gapless)")
    print(f"  simulated cycles          : {machine.engine.now:.0f}")
    assert shared_counter[0] == total
    assert max_in_section[0] == 1
    assert all_tickets == list(range(total))


if __name__ == "__main__":
    main()
