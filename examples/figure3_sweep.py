#!/usr/bin/env python3
"""Regenerate Figure 3: Typhoon/Stache execution time relative to DirNNB.

Runs the five benchmarks of Table 3 at every dataset/cache configuration
of Figure 3 (scaled cache ladder; DESIGN.md explains the scaling) on both
target systems, and prints the bar heights.  Bars below 1.0 mean the
user-level protocol beats the all-hardware one.

Run:  python examples/figure3_sweep.py [--nodes N] [--apps ocean,em3d]
"""

import argparse

from repro.harness import experiments
from repro.harness.workloads import APP_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8,
                        help="simulated processors (paper: 32)")
    parser.add_argument("--apps", type=str, default=",".join(APP_NAMES),
                        help="comma-separated subset of "
                             f"{', '.join(APP_NAMES)}")
    args = parser.parse_args()

    apps = tuple(name.strip() for name in args.apps.split(","))
    result = experiments.run_figure3(apps=apps, nodes=args.nodes)
    print(result.to_text())
    print()

    # A tiny text rendition of the bar chart.
    print("bars (each # is 0.05x; | marks parity with DirNNB):")
    for row in result.rows:
        bar = "#" * int(round(row["relative"] / 0.05))
        label = f"{row['application']:<7}{row['paper_cache']:<12}"
        marker = bar[:20] + "|" + bar[20:]
        print(f"  {label} {marker} {row['relative']:.3f}")


if __name__ == "__main__":
    main()
