#!/usr/bin/env python3
"""Quickstart: run one program on both target systems and compare.

Builds the two machines of the paper's Section 6 — the all-hardware
DirNNB system and Typhoon running the user-level Stache protocol — runs
the same unmodified application on both, and prints execution time plus
the key protocol statistics.

Run:  python examples/quickstart.py
"""

from repro.apps.base import run_app
from repro.apps.ocean import OceanApplication
from repro.protocols.dirnnb import DirNNBMachine
from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine


def main() -> None:
    nodes = 8
    config = MachineConfig(nodes=nodes, seed=42).with_cache_size(2048)

    # --- System 1: conventional all-hardware directory protocol --------
    dirnnb = DirNNBMachine(config)
    dirnnb_time = run_app(dirnnb, OceanApplication(grid=26, iterations=2))

    # --- System 2: Typhoon running Stache in user-level software -------
    typhoon = TyphoonMachine(config)
    protocol = StacheProtocol()
    typhoon.install_protocol(protocol)
    stache_time = run_app(typhoon, OceanApplication(grid=26, iterations=2),
                          protocol)

    print(f"Ocean, {nodes} nodes, 2 KB CPU caches")
    print(f"  DirNNB          : {dirnnb_time:>10.0f} cycles")
    print(f"  Typhoon/Stache  : {stache_time:>10.0f} cycles")
    print(f"  relative        : {stache_time / dirnnb_time:>10.3f}  "
          "(Figure 3 reports one such bar)")
    print()
    print("Typhoon/Stache protocol activity:")
    stats = typhoon.stats
    for name, label in [
        ("stache.pages_allocated", "stache pages allocated"),
        ("stache.blocks_fetched", "blocks fetched from homes"),
        ("stache.invalidations_sent", "invalidations sent"),
        ("network.packets", "network packets"),
    ]:
        print(f"  {label:<28}: {stats.get(name):>8.0f}")
    faults = stats.total(".cpu.block_faults")
    print(f"  {'block access faults':<28}: {faults:>8.0f}")


if __name__ == "__main__":
    main()
