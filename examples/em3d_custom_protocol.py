#!/usr/bin/env python3
"""EM3D with a custom user-level coherence protocol (paper Section 4).

Reproduces a compact version of Figure 4: EM3D cycles-per-edge for the
all-hardware DirNNB protocol, transparent shared memory on Typhoon
(Stache), and the application-specific delayed-update protocol, as the
fraction of remote graph edges grows.

The point of the experiment (and of Tempest): the update protocol sends
*one* value-only message per remote datum per step — no invalidations,
no refetches, no acknowledgments — so its curve stays low and flat.

Run:  python examples/em3d_custom_protocol.py [--nodes N] [--full]
"""

import argparse

from repro.harness import experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8,
                        help="simulated processors (paper: 32)")
    parser.add_argument("--full", action="store_true",
                        help="sweep 0-50%% in 10%% steps (default: 3 points)")
    args = parser.parse_args()

    fractions = ((0.0, 0.1, 0.2, 0.3, 0.4, 0.5) if args.full
                 else (0.0, 0.25, 0.5))
    result = experiments.run_figure4(nodes=args.nodes, fractions=fractions)
    print(result.to_text())
    print()
    worst = result.rows[-1]
    saving = (1 - worst["update_vs_dirnnb"]) * 100
    print(f"At {worst['remote_pct']}% remote edges the custom protocol "
          f"outperforms DirNNB by {saving:.0f}% (paper: 35%).")


if __name__ == "__main__":
    main()
