#!/usr/bin/env python3
"""Tutorial: write your own coherence protocol on Tempest, from scratch.

This is the whole point of the paper — the machine gives you mechanisms
(messages, page mapping, fine-grain tags, suspend/resume) and *you*
define what shared memory means.  Below is a complete, working protocol
in ~80 lines: **read-only replication**.  Data is written by its owner
during a setup phase; afterwards readers replicate blocks on demand and
no invalidation machinery exists at all, because the protocol's contract
is that post-setup writes are a program error.

It is deliberately simpler than Stache (one page mode, two message
handlers, no directory) so every moving part of the Tempest API is
visible:

1. a **page fault handler** maps a local page for remote data,
2. a **block access fault handler** sends the fetch request,
3. a **home-side message handler** replies with the data,
4. a **requester-side handler** installs it and resumes the CPU.

Run:  python examples/minimal_protocol.py
"""

from repro.memory.tags import Tag
from repro.network.message import DATA_WORDS, REQUEST_WORDS, VirtualNetwork
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine

MODE_HOME = 1
MODE_REPLICA = 2


class ReadOnlyReplication:
    """Demand replication of immutable data; no coherence traffic ever."""

    name = "read-only-replication"

    def install(self, machine):
        self.machine = machine
        for node in machine.nodes:
            tempest = node.tempest
            # Home side: answer fetches (30-instruction class handler).
            tempest.register_handler("ror.get", self._h_get, 30)
            # Requester side: install data, restart the CPU (20 instr).
            tempest.register_handler("ror.data", self._h_data, 20)
            # Block access faults on replica pages fetch the block (14).
            tempest.register_handler("ror.fault", self._f_read, 14)
            node.np.set_fault_handler(MODE_REPLICA, False, "ror.fault")
            # Writing replicated data is a contract violation: wire the
            # write fault to a handler that says so.
            tempest.register_handler("ror.illegal", self._f_write, 1)
            node.np.set_fault_handler(MODE_REPLICA, True, "ror.illegal")
            node.set_page_fault_handler(self._page_fault)

    def setup_region(self, region):
        """Map each page read-write on its home for the setup phase."""
        for page in range(region.base, region.end,
                          self.machine.layout.page_size):
            home = self.machine.heap.home_of(page)
            self.machine.nodes[home].tempest.map_page(
                page, mode=MODE_HOME, home=home,
                initial_tag=Tag.READ_WRITE)

    def seal_region(self, region):
        """End of setup: homes drop to ReadOnly (writes now fault there too)."""
        for page in range(region.base, region.end,
                          self.machine.layout.page_size):
            home = self.machine.heap.home_of(page)
            tempest = self.machine.nodes[home].tempest
            for block in self.machine.layout.blocks_in_page(page):
                tempest.set_ro(block)

    # -- the four moving parts ------------------------------------------
    def _page_fault(self, tempest, addr, is_write):
        tempest.map_page(addr, mode=MODE_REPLICA,
                         home=tempest.home_of(addr),
                         initial_tag=Tag.INVALID)

    def _f_read(self, tempest, fault):
        tempest.set_busy(fault.block_addr)
        tempest.send(tempest.page_entry(fault.block_addr).home, "ror.get",
                     vnet=VirtualNetwork.REQUEST, size_words=REQUEST_WORDS,
                     addr=fault.block_addr, requester=tempest.node_id)

    def _h_get(self, tempest, message):
        tempest.send(message.payload["requester"], "ror.data",
                     vnet=VirtualNetwork.RESPONSE, size_words=DATA_WORDS,
                     addr=message.payload["addr"],
                     data=tempest.export_block(message.payload["addr"]))

    def _h_data(self, tempest, message):
        tempest.import_block(message.payload["addr"],
                             message.payload["data"])
        tempest.set_ro(message.payload["addr"])
        tempest.resume()

    def _f_write(self, tempest, fault):
        raise RuntimeError(
            f"protocol contract violated: write to read-only replicated "
            f"data at {fault.addr:#x} by node {fault.node}"
        )


def main() -> None:
    nodes = 8
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=5))
    protocol = ReadOnlyReplication()
    machine.install_protocol(protocol)

    table = machine.heap.allocate(2 * 4096, home=0, label="lookup-table")
    protocol.setup_region(table)
    entries = 64

    def worker(node_id):
        tempest = machine.tempests[node_id]
        if node_id == 0:
            # Setup phase: the owner fills the table at hardware speed.
            for index in range(entries):
                yield from machine.nodes[0].access(
                    table.base + index * 32, True, index * index)
            protocol.seal_region(table)
        yield from machine.barrier_wait(node_id)
        # Every node reads the whole table twice; only the first touch of
        # each block costs a fetch, re-reads run at hardware speed.
        total = 0
        for _sweep in range(2):
            for index in range(entries):
                value = yield from machine.nodes[node_id].access(
                    table.base + index * 32, False)
                total += value
        assert total == 2 * sum(i * i for i in range(entries))

    machine.run_workers(worker)
    packets = machine.stats.get("network.packets") - machine.stats.get(
        "network.local_packets")
    print(f"{nodes} nodes replicated a {entries}-entry read-only table")
    print(f"  remote packets         : {packets:.0f} "
          f"(= 2 per block per consumer, no coherence traffic)")
    print(f"  block faults           : "
          f"{machine.stats.total('.cpu.block_faults'):.0f}")
    print(f"  simulated cycles       : {machine.engine.now:.0f}")
    print("the whole protocol is four small handlers — see the source.")


if __name__ == "__main__":
    main()
