#!/usr/bin/env python3
"""The Stache library's performance toolkit: prefetch, check-in, migration.

Transparent shared memory is Stache's default behaviour; the point of
Tempest is that a program can *help* the protocol when it knows more:

* **prefetch** — a non-binding fetch launched ahead of use, riding the
  Busy tag (hides latency; traffic unchanged);
* **check-in** — hand a block back to its home before someone else wants
  it, replacing a future three-hop writeback chain with one asynchronous
  notification (the cooperative-shared-memory operation);
* **page migration** — move a page's home to the node that uses it most,
  making its misses local forever after.

The demo measures a producer/consumer pipeline phase three ways and
prints the cycle counts and message totals.

Run:  python examples/stache_toolkit.py
"""

from repro.protocols.stache import StacheProtocol
from repro.sim.config import MachineConfig
from repro.typhoon.system import TyphoonMachine

BLOCKS = 24
BLOCK = 32


def build():
    machine = TyphoonMachine(MachineConfig(nodes=2, seed=21))
    protocol = StacheProtocol()
    machine.install_protocol(protocol)
    region = machine.heap.allocate(BLOCKS * BLOCK, home=0, label="pipe")
    protocol.setup_region(region)
    return machine, protocol, region


def measure(variant):
    """Node 0 produces BLOCKS values; node 1 consumes them; repeat."""
    machine, protocol, region = build()

    def producer():
        for round_ in range(3):
            for index in range(BLOCKS):
                addr = region.base + index * BLOCK
                yield from machine.nodes[0].access(addr, True, (round_, index))
            yield machine.barrier.arrive(0)
            yield machine.barrier.arrive(0)

    def consumer():
        for round_ in range(3):
            yield machine.barrier.arrive(1)
            for index in range(BLOCKS):
                addr = region.base + index * BLOCK
                if variant == "prefetch" and index + 1 < BLOCKS:
                    yield from protocol.prefetch(
                        1, region.base + (index + 1) * BLOCK)
                value = yield from machine.nodes[1].access(addr, False)
                assert value == (round_, index)
                yield 60  # per-item compute (what prefetch overlaps with)
            if variant == "checkin":
                for index in range(BLOCKS):
                    yield from protocol.check_in(
                        1, region.base + index * BLOCK)
            yield machine.barrier.arrive(1)

    machine.run_workers(lambda n: producer() if n == 0 else consumer())
    remote = (machine.stats.get("network.packets")
              - machine.stats.get("network.local_packets"))
    return machine.execution_time, remote


def measure_migration():
    """Instead of fetching every round, move the page next to the reader."""
    machine, protocol, region = build()

    def producer():
        # Producer writes once, then hands the whole page to the consumer.
        for index in range(BLOCKS):
            addr = region.base + index * BLOCK
            yield from machine.nodes[0].access(addr, True, (0, index))
        for page in range(region.base, region.end, 4096):
            yield from protocol.migrate_page(0, page, new_home=1)
        yield machine.barrier.arrive(0)
        yield machine.barrier.arrive(0)

    def consumer():
        yield machine.barrier.arrive(1)
        for round_ in range(3):
            for index in range(BLOCKS):
                addr = region.base + index * BLOCK
                value = yield from machine.nodes[1].access(addr, False)
                assert value == (0, index)
                yield 60  # per-item compute, as in the other variants
        yield machine.barrier.arrive(1)

    machine.run_workers(lambda n: producer() if n == 0 else consumer())
    remote = (machine.stats.get("network.packets")
              - machine.stats.get("network.local_packets"))
    return machine.execution_time, remote


def main() -> None:
    rows = []
    for variant in ("plain", "prefetch", "checkin"):
        cycles, packets = measure(variant)
        rows.append((variant, cycles, packets))
    cycles, packets = measure_migration()
    rows.append(("migration*", cycles, packets))

    print(f"producer -> consumer pipeline, {BLOCKS} blocks x 3 rounds")
    print(f"{'variant':<12}{'cycles':>10}{'remote packets':>16}")
    for variant, cycles, packets in rows:
        print(f"{variant:<12}{cycles:>10.0f}{packets:>16.0f}")
    print("* migration runs a different program: one write round, then")
    print("  the page moves to the consumer and every re-read is local.")


if __name__ == "__main__":
    main()
