#!/usr/bin/env python3
"""The other end of Tempest's spectrum: pure message passing.

Section 1: "programs with coarse-grain, static communication can send
messages.  Tempest does not impose shared-memory overhead on these
message-passing programs."  This example writes such a program directly
against the Tempest interface — no Stache, no page faults, no tags:

* a ring exchange implemented with **bulk data transfers** (each node
  ships a buffer to its right neighbour, overlapping the transfer with
  local compute), and
* a global sum implemented with **active messages** (leaves send partial
  sums to node 0, whose handler accumulates and broadcasts the result).

Run:  python examples/message_passing.py
"""

from repro.memory.tags import Tag
from repro.network.message import VirtualNetwork
from repro.sim.config import MachineConfig
from repro.sim.process import Future
from repro.typhoon.system import TyphoonMachine

BUFFER_BYTES = 512
WORDS = BUFFER_BYTES // 4


def main() -> None:
    nodes = 8
    machine = TyphoonMachine(MachineConfig(nodes=nodes, seed=3))

    # Plain flat buffers, one page per node per direction; tags are all
    # ReadWrite and never change: no shared-memory machinery runs.
    send_buffers = machine.heap.allocate_striped(4096, label="send")
    recv_buffers = machine.heap.allocate_striped(4096, label="recv")
    for node in range(nodes):
        machine.nodes[node].tempest.map_page(
            send_buffers[node].base, mode=0, home=node,
            initial_tag=Tag.READ_WRITE)
        machine.nodes[node].tempest.map_page(
            recv_buffers[node].base, mode=0, home=node,
            initial_tag=Tag.READ_WRITE)

    # --- a tiny user-level reduction library over active messages ------
    partial_sums = {"total": 0.0, "arrived": 0}
    done_futures = [Future(machine.engine) for _ in range(nodes)]

    def on_partial(tempest, message):
        partial_sums["total"] += message.payload["value"]
        partial_sums["arrived"] += 1
        if partial_sums["arrived"] == nodes:
            for node in range(nodes):
                tempest.send(node, "sum.result",
                             vnet=VirtualNetwork.RESPONSE,
                             value=partial_sums["total"])

    def on_result(tempest, message):
        done_futures[tempest.node_id].resolve(message.payload["value"])

    machine.tempests[0].register_handler("sum.partial", on_partial,
                                         instructions=12)
    for tempest in machine.tempests:
        tempest.register_handler("sum.result", on_result, instructions=8)

    results = {}

    def worker(node_id):
        tempest = machine.tempests[node_id]
        # Fill the outgoing buffer (local stores, full hardware speed).
        local_sum = 0.0
        for word in range(WORDS):
            value = node_id * 1000.0 + word
            yield from machine.nodes[node_id].access(
                send_buffers[node_id].base + word * 4, True, value)
            local_sum += value

        # Ship it to the right neighbour's receive buffer and overlap the
        # DMA-like transfer with "compute".
        right = (node_id + 1) % nodes
        transfer = tempest.bulk_transfer(
            right, send_buffers[node_id].base, recv_buffers[right].base,
            BUFFER_BYTES)
        yield 500  # overlapped computation
        yield transfer  # completion detection (Section 2.2)

        # Contribute to the global sum via one active message.
        tempest.send(0, "sum.partial", value=local_sum)
        total = yield done_futures[node_id]
        results[node_id] = total

    machine.run_workers(worker)

    expected = sum(n * 1000.0 + w for n in range(nodes) for w in range(WORDS))
    left = (0 - 1) % nodes
    delivered = machine.nodes[0].image.read(recv_buffers[0].base + 4)
    print(f"{nodes}-node ring exchange + active-message reduction")
    print(f"  bulk bytes shipped        : {nodes * BUFFER_BYTES}")
    print(f"  word 1 delivered to node 0: {delivered} "
          f"(sent by node {left})")
    print(f"  global sum at every node  : {set(results.values())} "
          f"(expected {expected})")
    print(f"  shared-memory faults      : "
          f"{machine.stats.total('.cpu.block_faults'):.0f} (must be 0)")
    print(f"  simulated cycles          : {machine.engine.now:.0f}")
    assert set(results.values()) == {expected}
    assert machine.stats.total(".cpu.block_faults") == 0


if __name__ == "__main__":
    main()
