#!/usr/bin/env python3
"""Replay an address trace through any simulated memory system.

Architecture studies often start from a reference trace, not a program.
This example writes a small text trace (the producer/consumer + false-
sharing patterns), replays it on DirNNB, Typhoon/Stache, and the IVY
page-DSM, and prints each system's cycles and traffic — three memory
systems judged on identical input.

Trace format (``repro.apps.trace``)::

    <node> r <addr>          # read
    <node> w <addr> <value>  # write
    <node> c <cycles>        # compute
    <node> b                 # barrier

Run:  python examples/trace_replay.py
"""

from repro.apps.base import run_app
from repro.apps.trace import TraceApplication, parse_trace
from repro.harness.runner import build_machine
from repro.sim.config import MachineConfig

TRACE = """
# Producer/consumer on block 0x00 and a false-sharing pair:
# node 0 owns offset 0x000, node 1 hammers offset 0x800 (same page!).
0 w 0x000 1
0 b
1 b
1 r 0x000
1 c 100
0 c 100

0 w 0x800 0     # unrelated in block terms, same page as 0x000...
0 b
1 b

1 w 0x840 1     # ...so page-grain systems will thrash here
0 w 0x000 2
1 b
0 b
1 w 0x840 2
0 w 0x000 3
1 b
0 b
1 w 0x840 3
0 w 0x000 4
1 b
0 b
"""


def main() -> None:
    programs = parse_trace(TRACE.splitlines())
    print(f"trace: {sum(len(ops) for ops in programs.values())} operations "
          f"over {len(programs)} nodes\n")
    print(f"{'system':<18}{'cycles':>10}{'remote packets':>16}")
    for system in ("dirnnb", "typhoon-stache", "ivy"):
        if system == "ivy":
            from repro.protocols.ivy import IvyProtocol
            from repro.typhoon.system import TyphoonMachine

            machine = TyphoonMachine(MachineConfig(nodes=2, seed=8))
            protocol = IvyProtocol()
            machine.install_protocol(protocol)
        else:
            machine, protocol = build_machine(
                system, MachineConfig(nodes=2, seed=8))
        app = TraceApplication(dict(programs), region_bytes=4096,
                               relative=True)
        cycles = run_app(machine, app, protocol)
        packets = (machine.stats.get("network.packets")
                   - machine.stats.get("network.local_packets"))
        print(f"{system:<18}{cycles:>10.0f}{packets:>16.0f}")
    print("\nsame references, three verdicts: the page-grain system pays "
          "for the false sharing the trace bakes in.")


if __name__ == "__main__":
    main()
